//! Replaying served queries back into RL episodes — the ingest side of
//! the online-learning loop.
//!
//! The serving layer records what it *did* (the bound [`QueryGraph`],
//! the forest-merge decisions of the plan that executed, and the work
//! the executor actually performed); this module turns that record back
//! into an [`Episode`] the policy-gradient agents can train on, by
//! replaying the decisions through the same [`Featurizer`] the policy
//! infers with. Feature vectors and action masks are recomputed against
//! the *current* statistics at replay time — exactly what a live
//! environment rollout would have produced — so the training-side and
//! serving-side views of a state cannot drift.
//!
//! One deliberate asymmetry: replayed transitions carry
//! `action_prob = 1.0`. REINFORCE never reads the behavior probability
//! (its gradient re-derives `log π(a|s)` from the current policy's
//! forward pass), so the online trainer's default backend is unaffected;
//! PPO's importance ratios *would* need the true behavior probabilities,
//! which a cache-hit serve never computes — run online training with a
//! REINFORCE-backed [`crate::ReJoinAgent`].

use crate::featurize::Featurizer;
use hfqo_query::{Forest, QueryGraph};
use hfqo_rl::{Episode, Transition};
use hfqo_stats::{EstimatedCardinality, StatsCatalog};

/// Why a served record could not be replayed into an episode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// Fewer than two relations: no join decisions to learn from.
    NoDecisions,
    /// More relations than the featurizer was built for.
    TooManyRelations {
        /// Relations in the query.
        relations: usize,
        /// The featurizer's capacity.
        max_rels: usize,
    },
    /// The decision count does not match `relations − 1`.
    WrongDecisionCount {
        /// Decisions recorded.
        got: usize,
        /// Decisions a full episode needs.
        expected: usize,
    },
    /// A decision was not a valid forest merge, or was excluded by the
    /// action mask (e.g. a cross-join pair under connected-only
    /// masking). Training on a masked action would push probability
    /// mass the softmax can never emit, so the record is rejected.
    InvalidDecision {
        /// Index of the offending decision.
        step: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoDecisions => write!(f, "query has no join decisions"),
            Self::TooManyRelations {
                relations,
                max_rels,
            } => {
                write!(
                    f,
                    "{relations} relations exceed featurizer capacity {max_rels}"
                )
            }
            Self::WrongDecisionCount { got, expected } => {
                write!(f, "{got} decisions recorded, episode needs {expected}")
            }
            Self::InvalidDecision { step } => {
                write!(f, "decision {step} is not a valid (masked) forest merge")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays a served query's forest-merge `decisions` into a training
/// [`Episode`]: one transition per decision, featurized against `stats`,
/// zero reward everywhere except the terminal step, which carries
/// `terminal_reward` (computed by the caller from the observed
/// execution, e.g. work-derived latency).
///
/// `require_connected` must match the masking the policy is trained
/// under; a decision the mask excludes fails with
/// [`ReplayError::InvalidDecision`] rather than producing an episode the
/// masked softmax cannot represent.
pub fn episode_from_decisions(
    graph: &QueryGraph,
    decisions: &[(usize, usize)],
    terminal_reward: f32,
    featurizer: &Featurizer,
    stats: &StatsCatalog,
    require_connected: bool,
) -> Result<Episode, ReplayError> {
    let n = graph.relation_count();
    if n < 2 {
        return Err(ReplayError::NoDecisions);
    }
    if n > featurizer.max_rels() {
        return Err(ReplayError::TooManyRelations {
            relations: n,
            max_rels: featurizer.max_rels(),
        });
    }
    if decisions.len() != n - 1 {
        return Err(ReplayError::WrongDecisionCount {
            got: decisions.len(),
            expected: n - 1,
        });
    }
    let est = EstimatedCardinality::new(stats);
    let mut forest = Forest::initial(n);
    let mut episode = Episode::new();
    let mut features = Vec::with_capacity(featurizer.state_dim());
    let mut mask = Vec::with_capacity(featurizer.action_dim());
    for (step, &(x, y)) in decisions.iter().enumerate() {
        featurizer.featurize(graph, &forest, &est, &mut features);
        featurizer.action_mask(graph, &forest, require_connected, &mut mask);
        let action = featurizer.encode_pair(x, y);
        if action >= mask.len() || !mask[action] || !forest.merge(x, y) {
            return Err(ReplayError::InvalidDecision { step });
        }
        let terminal = step + 1 == decisions.len();
        episode.transitions.push(Transition {
            features: features.clone(),
            mask: mask.clone(),
            action,
            action_prob: 1.0,
            reward: if terminal { terminal_reward } else { 0.0 },
        });
    }
    debug_assert!(forest.is_terminal(), "n − 1 valid merges terminate");
    Ok(episode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env_join::{EnvContext, JoinOrderEnv};
    use crate::reward::RewardMode;
    use crate::QueryOrder;
    use hfqo_opt::test_support::{chain_query, TestDb};
    use hfqo_opt::{expert_actions, TraditionalOptimizer};
    use hfqo_rl::Environment as _;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Replaying the expert's decisions must reproduce exactly the
    /// transitions a live environment rollout of the same actions
    /// produces: same features, same masks, same action encoding, same
    /// sparse-reward shape.
    #[test]
    fn replay_matches_live_environment_rollout() {
        let db = TestDb::chain(5, 300);
        let queries = vec![chain_query(&db, 5)];
        let optimizer = TraditionalOptimizer::new(db.db.catalog(), &db.stats);
        let expert = expert_actions(&optimizer, &queries[0]).unwrap();

        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env = JoinOrderEnv::new(
            ctx,
            &queries,
            6,
            QueryOrder::Fixed(0),
            RewardMode::InverseCost,
        );
        let featurizer = env.featurizer();
        let mut rng = StdRng::seed_from_u64(0);
        let mut features = Vec::new();
        let mut mask = Vec::new();
        env.reset(&mut rng);
        let mut reference = Vec::new();
        for &(x, y) in &expert.actions {
            env.state_features(&mut features);
            env.action_mask(&mut mask);
            let action = featurizer.encode_pair(x, y);
            reference.push((features.clone(), mask.clone(), action));
            env.step(action, &mut rng);
        }

        let episode = episode_from_decisions(
            &queries[0],
            &expert.actions,
            7.5,
            &featurizer,
            &db.stats,
            false,
        )
        .unwrap();
        assert_eq!(episode.len(), expert.actions.len());
        for (t, (f, m, a)) in episode.transitions.iter().zip(&reference) {
            assert_eq!(&t.features, f);
            assert_eq!(&t.mask, m);
            assert_eq!(t.action, *a);
        }
        // Sparse terminal reward.
        let rewards: Vec<f32> = episode.transitions.iter().map(|t| t.reward).collect();
        assert_eq!(rewards, vec![0.0, 0.0, 0.0, 7.5]);
    }

    #[test]
    fn rejects_degenerate_records() {
        let db = TestDb::chain(4, 200);
        let graph = chain_query(&db, 4);
        let single = chain_query(&db, 1);
        let featurizer = Featurizer::new(4);
        let narrow = Featurizer::new(3);
        assert_eq!(
            episode_from_decisions(&single, &[], 1.0, &featurizer, &db.stats, false).err(),
            Some(ReplayError::NoDecisions)
        );
        assert_eq!(
            episode_from_decisions(&graph, &[(0, 1)], 1.0, &narrow, &db.stats, false).err(),
            Some(ReplayError::TooManyRelations {
                relations: 4,
                max_rels: 3
            })
        );
        assert_eq!(
            episode_from_decisions(&graph, &[(0, 1)], 1.0, &featurizer, &db.stats, false).err(),
            Some(ReplayError::WrongDecisionCount {
                got: 1,
                expected: 3
            })
        );
        // (0, 0) is never a valid merge.
        assert_eq!(
            episode_from_decisions(
                &graph,
                &[(0, 0), (0, 1), (0, 1)],
                1.0,
                &featurizer,
                &db.stats,
                false
            )
            .err(),
            Some(ReplayError::InvalidDecision { step: 0 })
        );
    }

    /// Under connected-only masking a cross-join decision must be
    /// rejected, not trained on: the masked softmax assigns it zero
    /// probability, so its policy gradient is undefined.
    #[test]
    fn cross_join_decisions_rejected_under_connected_masking() {
        let db = TestDb::chain(4, 200);
        let graph = chain_query(&db, 4);
        let featurizer = Featurizer::new(4);
        // Chain t0–t1–t2–t3: merging (0, 2) is a cross join.
        let decisions = [(0, 2), (0, 1), (0, 1)];
        assert_eq!(
            episode_from_decisions(&graph, &decisions, 1.0, &featurizer, &db.stats, true).err(),
            Some(ReplayError::InvalidDecision { step: 0 })
        );
        // The same decisions replay fine when cross joins are allowed.
        assert!(
            episode_from_decisions(&graph, &decisions, 1.0, &featurizer, &db.stats, false).is_ok()
        );
    }
}
