//! Training metrics and logs.

/// A windowed moving average.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: usize,
    values: Vec<f64>,
    next: usize,
    sum: f64,
}

impl MovingAverage {
    /// A moving average over the last `window` values.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            values: Vec::with_capacity(window),
            next: 0,
            sum: 0.0,
        }
    }

    /// Adds a value.
    pub fn push(&mut self, v: f64) {
        if self.values.len() < self.window {
            self.values.push(v);
            self.sum += v;
        } else {
            self.sum += v - self.values[self.next];
            self.values[self.next] = v;
            self.next = (self.next + 1) % self.window;
        }
    }

    /// The current average (`None` before any value arrives).
    pub fn value(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.sum / self.values.len() as f64)
        }
    }

    /// Number of values currently contributing.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values have arrived.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// One training episode's record.
///
/// `PartialEq` compares every field exactly (floats included): the
/// determinism-parity tests assert bit-identical logs across trainer
/// configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeRecord {
    /// Episode number (0-based).
    pub episode: usize,
    /// Workload query index.
    pub query_idx: usize,
    /// Query label, if any.
    pub label: Option<String>,
    /// Agent plan cost `M(t)`.
    pub agent_cost: f64,
    /// Expert plan cost for the same query.
    pub expert_cost: f64,
    /// Terminal reward granted.
    pub reward: f32,
    /// Simulated latency, when the reward needed one.
    pub latency_ms: Option<f64>,
}

impl EpisodeRecord {
    /// Agent cost relative to the expert (1.0 = parity, 2.0 = twice as
    /// expensive — the y-axis of Figure 3a as a fraction rather than %).
    pub fn cost_ratio(&self) -> f64 {
        self.agent_cost / self.expert_cost.max(1e-9)
    }
}

/// The full log of a training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingLog {
    /// Per-episode records, in order.
    pub records: Vec<EpisodeRecord>,
}

impl TrainingLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: EpisodeRecord) {
        self.records.push(record);
    }

    /// Number of episodes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Moving-average cost ratio over a window — the Figure 3a series.
    /// Returns `(episode, ma_ratio)` pairs, one per episode once the
    /// window has filled.
    pub fn moving_ratio(&self, window: usize) -> Vec<(usize, f64)> {
        let mut ma = MovingAverage::new(window.max(1));
        let mut out = Vec::new();
        for r in &self.records {
            ma.push(r.cost_ratio());
            if ma.len() >= window.min(self.records.len()) {
                out.push((r.episode, ma.value().expect("non-empty")));
            }
        }
        out
    }

    /// First episode at which the moving-average ratio drops to
    /// `threshold` or below (the paper's "competitive with PostgreSQL"
    /// moment), or `None` if it never does.
    pub fn convergence_episode(&self, threshold: f64, window: usize) -> Option<usize> {
        self.moving_ratio(window)
            .into_iter()
            .find(|(_, ratio)| *ratio <= threshold)
            .map(|(ep, _)| ep)
    }

    /// Mean cost ratio over the final `window` episodes.
    pub fn final_ratio(&self, window: usize) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        let tail = &self.records[self.records.len().saturating_sub(window)..];
        Some(tail.iter().map(EpisodeRecord::cost_ratio).sum::<f64>() / tail.len() as f64)
    }

    /// Geometric-mean moving cost ratio — the robust variant of
    /// [`moving_ratio`] used for reporting: plan-cost ratios span many
    /// orders of magnitude, and a single cross-join episode dominates an
    /// arithmetic mean long after the policy has stopped producing them.
    ///
    /// [`moving_ratio`]: Self::moving_ratio
    pub fn moving_geo_ratio(&self, window: usize) -> Vec<(usize, f64)> {
        let mut ma = MovingAverage::new(window.max(1));
        let mut out = Vec::new();
        for r in &self.records {
            ma.push(r.cost_ratio().max(1e-12).ln());
            if ma.len() >= window.min(self.records.len()) {
                out.push((r.episode, ma.value().expect("non-empty").exp()));
            }
        }
        out
    }

    /// Geometric-mean cost ratio over the final `window` episodes.
    pub fn final_geo_ratio(&self, window: usize) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        let tail = &self.records[self.records.len().saturating_sub(window)..];
        let mean_ln = tail
            .iter()
            .map(|r| r.cost_ratio().max(1e-12).ln())
            .sum::<f64>()
            / tail.len() as f64;
        Some(mean_ln.exp())
    }

    /// Geometric-mean cost ratio over the first `window` episodes.
    pub fn initial_geo_ratio(&self, window: usize) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        let head = &self.records[..window.min(self.records.len())];
        let mean_ln = head
            .iter()
            .map(|r| r.cost_ratio().max(1e-12).ln())
            .sum::<f64>()
            / head.len() as f64;
        Some(mean_ln.exp())
    }

    /// First episode at which the geometric moving-average ratio drops
    /// to `threshold` or below.
    pub fn convergence_episode_geo(&self, threshold: f64, window: usize) -> Option<usize> {
        self.moving_geo_ratio(window)
            .into_iter()
            .find(|(_, ratio)| *ratio <= threshold)
            .map(|(ep, _)| ep)
    }

    /// Largest latency observed, when latencies were recorded.
    pub fn worst_latency_ms(&self) -> Option<f64> {
        self.records
            .iter()
            .filter_map(|r| r.latency_ms)
            .fold(None, |acc, l| Some(acc.map_or(l, |a: f64| a.max(l))))
    }

    /// Concatenates another log, renumbering its episodes to follow this
    /// one (used by multi-phase trainers).
    pub fn extend_renumbered(&mut self, other: TrainingLog) {
        let offset = self.records.len();
        for (i, mut r) in other.records.into_iter().enumerate() {
            r.episode = offset + i;
            self.records.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(episode: usize, agent: f64, expert: f64) -> EpisodeRecord {
        EpisodeRecord {
            episode,
            query_idx: 0,
            label: None,
            agent_cost: agent,
            expert_cost: expert,
            reward: 0.0,
            latency_ms: None,
        }
    }

    #[test]
    fn moving_average_window() {
        let mut ma = MovingAverage::new(3);
        assert!(ma.value().is_none());
        assert!(ma.is_empty());
        for v in [1.0, 2.0, 3.0, 4.0] {
            ma.push(v);
        }
        // Window holds 2, 3, 4.
        assert!((ma.value().expect("values") - 3.0).abs() < 1e-12);
        assert_eq!(ma.len(), 3);
    }

    #[test]
    fn convergence_detection() {
        let mut log = TrainingLog::new();
        // Ratios: 8, 6, 4, 2, 1, 0.9, 0.9, ...
        for (i, ratio) in [8.0, 6.0, 4.0, 2.0, 1.0, 0.9, 0.9, 0.9].iter().enumerate() {
            log.push(record(i, ratio * 100.0, 100.0));
        }
        let conv = log.convergence_episode(1.0, 2).expect("converges");
        assert!(conv >= 4, "converged at {conv}");
        assert!(log.final_ratio(3).expect("non-empty") < 1.0);
        assert!(log.convergence_episode(0.1, 2).is_none());
    }

    #[test]
    fn moving_ratio_series_shape() {
        let mut log = TrainingLog::new();
        for i in 0..10 {
            log.push(record(i, 200.0, 100.0));
        }
        let series = log.moving_ratio(5);
        assert_eq!(series.len(), 6); // episodes 4..=9
        assert!(series.iter().all(|(_, r)| (r - 2.0).abs() < 1e-12));
    }

    #[test]
    fn renumbering_on_extend() {
        let mut a = TrainingLog::new();
        a.push(record(0, 1.0, 1.0));
        let mut b = TrainingLog::new();
        b.push(record(0, 2.0, 1.0));
        b.push(record(1, 3.0, 1.0));
        a.extend_renumbered(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.records[1].episode, 1);
        assert_eq!(a.records[2].episode, 2);
    }

    #[test]
    fn geometric_metrics_resist_outliers() {
        let mut log = TrainingLog::new();
        // 9 parity episodes + one catastrophic outlier.
        for i in 0..9 {
            log.push(record(i, 100.0, 100.0));
        }
        log.push(record(9, 1_000_000.0, 100.0));
        let arith = log.final_ratio(10).expect("non-empty");
        let geo = log.final_geo_ratio(10).expect("non-empty");
        assert!(arith > 500.0, "arith {arith}");
        assert!(geo < 3.0, "geo {geo}");
        assert!(log.initial_geo_ratio(5).expect("non-empty") < 1.01);
        assert!(log.convergence_episode_geo(1.5, 5).is_some());
        assert_eq!(log.moving_geo_ratio(5).len(), 6);
    }

    #[test]
    fn worst_latency() {
        let mut log = TrainingLog::new();
        assert!(log.worst_latency_ms().is_none());
        let mut r = record(0, 1.0, 1.0);
        r.latency_ms = Some(5.0);
        log.push(r);
        let mut r = record(1, 1.0, 1.0);
        r.latency_ms = Some(25.0);
        log.push(r);
        assert_eq!(log.worst_latency_ms(), Some(25.0));
    }
}
