//! # hfqo-rejoin
//!
//! The paper's contribution: **ReJOIN**, a deep-reinforcement-learning
//! join order enumerator (§3), extended with the full execution-plan
//! action space (§4's search-space experiment) and the three proposed
//! research directions — **learning from demonstration** (§5.1),
//! **cost-model bootstrapping** (§5.2), and **incremental learning**
//! (§5.3, pipeline / relations / hybrid curricula).
//!
//! The moving pieces:
//!
//! * [`featurize`] — ReJOIN's state vectorisation: per-subtree
//!   `1/2^depth` tree-structure rows plus join-predicate and
//!   selection-predicate features, fixed-width for a configurable maximum
//!   relation count with masked pair actions.
//! * [`env_join`] — the episodic join-ordering environment (episode =
//!   query, action = ordered subtree pair, terminal reward from the cost
//!   model / latency source).
//! * [`env_full`] — the full-plan environment adding access-path, join
//!   operator, and aggregate operator decisions, gated by a
//!   [`incremental::StageSet`] so curricula can grow the action space.
//! * [`reward`] — the reward signals: `1/M(t)`, expert-relative cost,
//!   (scaled) simulated latency.
//! * [`trainer`] — the episode loop with per-episode logging, the data
//!   behind Figures 3a/3b.
//! * [`parallel`] — the multi-worker episode-collection harness
//!   (`ParallelTrainer`): N threads over the shared read-only world,
//!   A2C-style synchronous rounds, deterministic per-worker RNG
//!   streams.
//! * [`learned`] — the serving-side [`LearnedPlanner`]: a frozen
//!   policy snapshot behind the unified `hfqo_opt::Planner` trait,
//!   planning by greedy-argmax inference plus the [`planfix`] hand-off.
//! * [`experience`] — the online-learning ingest path: replaying a
//!   served query's recorded join decisions (plus its observed
//!   execution) back into a training [`hfqo_rl::Episode`].
//! * [`demonstration`], [`bootstrap`], [`incremental`] — the §5 methods.

pub mod agent;
pub mod bootstrap;
pub mod demonstration;
pub mod env_full;
pub mod env_join;
pub mod experience;
pub mod featurize;
pub mod incremental;
pub mod learned;
pub mod metrics;
pub mod parallel;
pub mod planfix;
pub mod reward;
pub mod trainer;

pub use agent::{PolicyKind, ReJoinAgent};
pub use bootstrap::{cost_bootstrap, BootstrapConfig, BootstrapOutcome};
pub use demonstration::{learn_from_demonstration, DemonstrationConfig, DemonstrationOutcome};
pub use env_full::{FullPlanEnv, Phase};
pub use env_join::{EnvContext, EpisodeOutcome, JoinOrderEnv, LatencySource, QueryOrder};
pub use experience::{episode_from_decisions, ReplayError};
pub use featurize::Featurizer;
pub use incremental::{Curriculum, StageSet};
pub use learned::LearnedPlanner;
pub use metrics::{MovingAverage, TrainingLog};
pub use parallel::{train_parallel, ParallelTrainer};
pub use reward::RewardMode;
pub use trainer::{evaluate_per_query, train, OutcomeEnv, TrainerConfig};
