//! The training loop and evaluation helpers.

use crate::agent::ReJoinAgent;
use crate::env_full::FullPlanEnv;
use crate::env_join::{EpisodeOutcome, JoinOrderEnv, QueryOrder};
use crate::metrics::{EpisodeRecord, TrainingLog};
use hfqo_rl::{Environment, UpdatePath};
use rand::rngs::StdRng;

/// An environment whose episodes end in a plan with observable quality —
/// what the trainer needs beyond `Environment` to build its log.
pub trait OutcomeEnv: Environment {
    /// The outcome of the most recently finished episode.
    fn episode_outcome(&self) -> Option<&EpisodeOutcome>;

    /// Changes the query ordering policy.
    fn set_query_order(&mut self, order: QueryOrder);

    /// The current query ordering policy (the parallel trainer reads it
    /// to emulate the global `Cycle` walk across workers).
    fn query_order(&self) -> QueryOrder;

    /// Number of queries in the workload.
    fn workload_len(&self) -> usize;
}

impl OutcomeEnv for JoinOrderEnv<'_> {
    fn episode_outcome(&self) -> Option<&EpisodeOutcome> {
        self.last_outcome()
    }

    fn set_query_order(&mut self, order: QueryOrder) {
        self.set_order(order);
    }

    fn query_order(&self) -> QueryOrder {
        self.order()
    }

    fn workload_len(&self) -> usize {
        self.queries().len()
    }
}

impl OutcomeEnv for FullPlanEnv<'_> {
    fn episode_outcome(&self) -> Option<&EpisodeOutcome> {
        self.last_outcome()
    }

    fn set_query_order(&mut self, order: QueryOrder) {
        self.set_order(order);
    }

    fn query_order(&self) -> QueryOrder {
        self.order()
    }

    fn workload_len(&self) -> usize {
        self.queries().len()
    }
}

/// Training-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainerConfig {
    /// Episodes to run.
    pub episodes: usize,
    /// Episode-collection worker threads. `1` (the default) is the
    /// exact legacy sequential loop; `N > 1` collects episodes on `N`
    /// threads in synchronous A2C-style rounds (see
    /// [`crate::parallel`]).
    pub workers: usize,
    /// Which network-update implementation the agent uses. `None` (the
    /// default) leaves the agent's own setting untouched — batched
    /// unless the caller chose otherwise via
    /// [`ReJoinAgent::set_update_path`]. `Some(UpdatePath::Batched)`
    /// fuses each policy update into one B×F forward/backward;
    /// `Some(UpdatePath::PerRow)` selects the bit-identical
    /// per-transition reference, retained for parity verification and
    /// benchmarking. Either path reproduces the same training log, bit
    /// for bit.
    pub update_path: Option<UpdatePath>,
}

impl TrainerConfig {
    /// A configuration running `episodes` episodes on one worker,
    /// respecting the agent's own update-path setting.
    pub fn new(episodes: usize) -> Self {
        Self {
            episodes,
            workers: 1,
            update_path: None,
        }
    }

    /// Sets the worker-thread count (builder style). `0` is coerced
    /// to `1`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the network-update implementation (builder style). Until
    /// this is called, the trainer respects whatever path the agent
    /// already has.
    pub fn with_update_path(mut self, path: UpdatePath) -> Self {
        self.update_path = Some(path);
        self
    }
}

/// Builds the log record for a finished episode's outcome.
pub(crate) fn record_from(outcome: &EpisodeOutcome, episode: usize) -> EpisodeRecord {
    EpisodeRecord {
        episode,
        query_idx: outcome.query_idx,
        label: outcome.label.clone(),
        agent_cost: outcome.agent_cost,
        expert_cost: outcome.expert_cost,
        reward: outcome.reward,
        latency_ms: outcome.latency_ms,
    }
}

/// Runs the standard training loop: sample an episode with the current
/// policy, log its outcome, hand it to the agent. Returns the per-episode
/// log (Figure 3a's raw data).
///
/// This is the sequential path; `config.workers` is ignored here. Use
/// [`crate::parallel::train_parallel`] (or [`crate::ParallelTrainer`])
/// to honor it.
///
/// ```
/// use hfqo_opt::test_support::{chain_query, TestDb};
/// use hfqo_rejoin::{
///     train, EnvContext, JoinOrderEnv, PolicyKind, QueryOrder, ReJoinAgent, RewardMode,
///     TrainerConfig,
/// };
/// use hfqo_rl::Environment as _;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let fixture = TestDb::chain(3, 150);
/// let queries = vec![chain_query(&fixture, 3)];
/// let ctx = EnvContext::new(&fixture.db, &fixture.stats);
/// let mut env = JoinOrderEnv::new(ctx, &queries, 3, QueryOrder::Cycle, RewardMode::LogRelative);
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut agent = ReJoinAgent::new(
///     env.state_dim(),
///     env.action_dim(),
///     PolicyKind::default_reinforce(),
///     &mut rng,
/// );
/// let log = train(&mut env, &mut agent, TrainerConfig::new(10), &mut rng);
/// assert_eq!(log.len(), 10);
/// assert_eq!(agent.episodes_seen(), 10);
/// ```
pub fn train<E: OutcomeEnv>(
    env: &mut E,
    agent: &mut ReJoinAgent,
    config: TrainerConfig,
    rng: &mut StdRng,
) -> TrainingLog {
    if let Some(path) = config.update_path {
        agent.set_update_path(path);
    }
    let mut log = TrainingLog::new();
    for episode in 0..config.episodes {
        let ep = agent.run_episode(env, rng, false);
        if let Some(outcome) = env.episode_outcome() {
            log.push(record_from(outcome, episode));
        }
        agent.observe(ep);
    }
    agent.flush();
    log
}

/// Greedy evaluation of every workload query with the current policy:
/// returns one record per query (Figure 3b's raw data). Restores the
/// given order afterwards.
pub fn evaluate_per_query<E: OutcomeEnv>(
    env: &mut E,
    agent: &ReJoinAgent,
    restore_order: QueryOrder,
    rng: &mut StdRng,
) -> Vec<EpisodeRecord> {
    let mut out = Vec::with_capacity(env.workload_len());
    for idx in 0..env.workload_len() {
        env.set_query_order(QueryOrder::Fixed(idx));
        let _ = agent.run_episode(env, rng, true);
        if let Some(outcome) = env.episode_outcome() {
            out.push(EpisodeRecord {
                episode: idx,
                query_idx: outcome.query_idx,
                label: outcome.label.clone(),
                agent_cost: outcome.agent_cost,
                expert_cost: outcome.expert_cost,
                reward: outcome.reward,
                latency_ms: outcome.latency_ms,
            });
        }
    }
    env.set_query_order(restore_order);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::PolicyKind;
    use crate::env_join::EnvContext;
    use crate::reward::RewardMode;
    use hfqo_opt::test_support::{chain_query, TestDb};
    use hfqo_query::QueryGraph;
    use hfqo_rl::ReinforceConfig;
    use rand::SeedableRng;

    fn fixtures() -> (TestDb, Vec<QueryGraph>) {
        let db = TestDb::chain(4, 300);
        let queries = vec![
            chain_query(&db, 4).with_label("a"),
            chain_query(&db, 3).with_label("b"),
        ];
        (db, queries)
    }

    fn small_agent(env: &JoinOrderEnv<'_>, rng: &mut StdRng) -> ReJoinAgent {
        ReJoinAgent::new(
            env.state_dim(),
            env.action_dim(),
            PolicyKind::Reinforce(ReinforceConfig {
                hidden: vec![32],
                lr: 0.005,
                batch_episodes: 4,
                ..Default::default()
            }),
            rng,
        )
    }

    #[test]
    fn training_produces_full_log() {
        let (db, queries) = fixtures();
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env = JoinOrderEnv::new(
            ctx,
            &queries,
            5,
            QueryOrder::Cycle,
            RewardMode::RelativeToExpert,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let mut agent = small_agent(&env, &mut rng);
        let log = train(&mut env, &mut agent, TrainerConfig::new(20), &mut rng);
        assert_eq!(log.len(), 20);
        assert!(log.records.iter().all(|r| r.agent_cost > 0.0));
        // Cycle order alternates queries.
        assert_eq!(log.records[0].query_idx, 0);
        assert_eq!(log.records[1].query_idx, 1);
        assert_eq!(agent.episodes_seen(), 20);
    }

    #[test]
    fn training_improves_small_workload() {
        let (db, queries) = fixtures();
        let ctx = EnvContext::new(&db.db, &db.stats);
        // The headline training configuration: log-scale reward and
        // connected-pair masking (as ReJOIN's implementation used).
        let mut env =
            JoinOrderEnv::new(ctx, &queries, 5, QueryOrder::Cycle, RewardMode::LogRelative);
        env.require_connected = true;
        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = small_agent(&env, &mut rng);
        let log = train(&mut env, &mut agent, TrainerConfig::new(400), &mut rng);
        let early = log.initial_geo_ratio(50).expect("non-empty");
        let late = log.final_geo_ratio(50).expect("non-empty");
        assert!(
            late <= early * 1.05,
            "no improvement: early {early:.3} late {late:.3}"
        );
        // A 4-relation chain is easy: the trained agent should be near
        // expert parity.
        assert!(late < 2.0, "final ratio {late:.3} too high");
    }

    #[test]
    fn per_query_evaluation_covers_workload() {
        let (db, queries) = fixtures();
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env = JoinOrderEnv::new(
            ctx,
            &queries,
            5,
            QueryOrder::Cycle,
            RewardMode::RelativeToExpert,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let agent = small_agent(&env, &mut rng);
        let records = evaluate_per_query(&mut env, &agent, QueryOrder::Cycle, &mut rng);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].label.as_deref(), Some("a"));
        assert_eq!(records[1].label.as_deref(), Some("b"));
    }
}
