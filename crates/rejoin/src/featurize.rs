//! ReJOIN state vectorisation.
//!
//! Following the case study (§3, with details from the ReJOIN paper it
//! summarises), a state is the current forest of join subtrees plus static
//! information about the query's join and selection predicates:
//!
//! * **Tree structure** — one row per forest slot; the entry for base
//!   relation `r` is `1/2^depth(r)` within that subtree (0 when absent).
//!   The root-level weighting lets the network see *how* relations have
//!   been combined, not just which.
//! * **Join adjacency** — a symmetric 0/1 matrix marking which relation
//!   pairs are connected by a join predicate.
//! * **Selections** — per relation, a flag and the estimated combined
//!   selectivity of its selection predicates.
//!
//! Everything is laid out at a fixed `max_rels` width so one network
//! serves queries of any size, with invalid actions masked.

use hfqo_query::{Forest, QueryGraph, RelId};
use hfqo_stats::EstimatedCardinality;

/// Fixed-width featurizer for forests over at most `max_rels` relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Featurizer {
    max_rels: usize,
}

impl Featurizer {
    /// A featurizer for queries of up to `max_rels` relations.
    pub fn new(max_rels: usize) -> Self {
        assert!(max_rels >= 2, "need at least two relations to join");
        Self { max_rels }
    }

    /// The configured maximum relation count.
    pub fn max_rels(&self) -> usize {
        self.max_rels
    }

    /// Width of the base state vector: `max² (tree) + max² (adjacency) +
    /// 2·max (selections) + max (subtree sizes) + max (relation sizes)`.
    ///
    /// The two cardinality sections carry the information ReJOIN's
    /// database-wide one-hot rows carried implicitly (its tree vectors
    /// spanned *all* database relations, so relation identity — and thus
    /// size — was learnable). Our slots are query-relative, so sizes are
    /// provided explicitly: log-scaled estimated rows of each current
    /// subtree, and log-scaled raw rows of each base relation.
    pub fn state_dim(&self) -> usize {
        2 * self.max_rels * self.max_rels + 4 * self.max_rels
    }

    /// Size of the ordered-pair action space (`max²`; the diagonal is
    /// never valid).
    pub fn action_dim(&self) -> usize {
        self.max_rels * self.max_rels
    }

    /// Encodes `(x, y)` as an action id.
    #[inline]
    pub fn encode_pair(&self, x: usize, y: usize) -> usize {
        x * self.max_rels + y
    }

    /// Decodes an action id back to `(x, y)`.
    #[inline]
    pub fn decode_pair(&self, action: usize) -> (usize, usize) {
        (action / self.max_rels, action % self.max_rels)
    }

    /// Writes the state features for `forest` over `graph` into `out`
    /// (cleared first; always `state_dim` long).
    pub fn featurize(
        &self,
        graph: &QueryGraph,
        forest: &Forest,
        est: &EstimatedCardinality<'_>,
        out: &mut Vec<f32>,
    ) {
        let m = self.max_rels;
        out.clear();
        out.resize(self.state_dim(), 0.0);
        // Tree-structure rows.
        for (slot, tree) in forest.trees().iter().enumerate().take(m) {
            for rel in tree.rel_set().iter() {
                if rel.index() >= m {
                    continue;
                }
                let depth = tree.depth_of(rel).unwrap_or(0);
                out[slot * m + rel.index()] = 0.5f32.powi(depth as i32);
            }
        }
        // Join adjacency (symmetric).
        let adj_base = m * m;
        for edge in graph.joins() {
            let (i, j) = (edge.left.rel.index(), edge.right.rel.index());
            if i < m && j < m {
                out[adj_base + i * m + j] = 1.0;
                out[adj_base + j * m + i] = 1.0;
            }
        }
        // Selection features.
        let sel_base = 2 * m * m;
        for rel_idx in 0..graph.relation_count().min(m) {
            let rel = RelId(rel_idx as u32);
            let has_sel = graph.selections_on(rel).next().is_some();
            if has_sel {
                out[sel_base + 2 * rel_idx] = 1.0;
                let sel = est.selection_selectivity_of(graph, rel);
                out[sel_base + 2 * rel_idx + 1] = sel as f32;
            } else {
                out[sel_base + 2 * rel_idx + 1] = 1.0;
            }
        }
        // Estimated size of each current subtree, log-scaled into [0, 1].
        use hfqo_stats::CardinalitySource as _;
        let size_base = 2 * m * m + 2 * m;
        for (slot, tree) in forest.trees().iter().enumerate().take(m) {
            let rows = est.set_rows(graph, tree.rel_set()).max(1.0);
            out[size_base + slot] = ((rows.ln() / 20.0) as f32).clamp(0.0, 1.0);
        }
        // Raw size of each base relation, log-scaled into [0, 1].
        let raw_base = 2 * m * m + 3 * m;
        for rel_idx in 0..graph.relation_count().min(m) {
            let table = graph.relation(RelId(rel_idx as u32)).table;
            let raw = est.stats().table(table).row_count.max(1.0);
            out[raw_base + rel_idx] = (((raw + 1.0).ln() / 20.0) as f32).clamp(0.0, 1.0);
        }
    }

    /// Writes the valid-action mask for `forest` into `out` (cleared
    /// first; always `action_dim` long). A pair `(x, y)` is valid when
    /// both index live subtrees and `x ≠ y`; with `require_connected`,
    /// the two subtrees must additionally share a join predicate (no
    /// cross joins — ReJOIN itself allowed them, so the default in the
    /// environments is `false`).
    pub fn action_mask(
        &self,
        graph: &QueryGraph,
        forest: &Forest,
        require_connected: bool,
        out: &mut Vec<bool>,
    ) {
        let m = self.max_rels;
        out.clear();
        out.resize(self.action_dim(), false);
        let len = forest.len().min(m);
        let mut any = false;
        for x in 0..len {
            for y in 0..len {
                if x == y {
                    continue;
                }
                let valid = if require_connected {
                    graph.sets_connected(forest.trees()[x].rel_set(), forest.trees()[y].rel_set())
                } else {
                    true
                };
                if valid {
                    out[self.encode_pair(x, y)] = true;
                    any = true;
                }
            }
        }
        // A disconnected remainder with `require_connected` would deadlock
        // the episode; fall back to allowing all pairs (the paper's
        // cross-join-permitting space).
        if !any && len >= 2 {
            for x in 0..len {
                for y in 0..len {
                    if x != y {
                        out[self.encode_pair(x, y)] = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{ColumnId, ColumnStatsMeta, TableId};
    use hfqo_query::{BoundColumn, JoinEdge, Lit, Relation, Selection};
    use hfqo_sql::CompareOp;
    use hfqo_stats::{ColumnStats, StatsCatalog, TableStats};

    fn graph4() -> (QueryGraph, StatsCatalog) {
        // Chain 0-1-2-3 with a selection on r1.
        let relations = (0..4)
            .map(|i| Relation {
                table: TableId(i),
                alias: format!("t{i}"),
            })
            .collect();
        let joins = (1..4)
            .map(|i| JoinEdge {
                left: BoundColumn::new(RelId(i - 1), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(i), ColumnId(0)),
            })
            .collect();
        let selections = vec![Selection {
            column: BoundColumn::new(RelId(1), ColumnId(0)),
            op: CompareOp::Lt,
            value: Lit::Int(50),
        }];
        let graph = QueryGraph::new(relations, joins, selections, vec![], vec![]);
        let stats = StatsCatalog::new(
            (0..4)
                .map(|_| TableStats {
                    row_count: 100.0,
                    row_width: 8.0,
                    columns: vec![ColumnStats {
                        meta: ColumnStatsMeta {
                            ndv: 100.0,
                            min: 0.0,
                            max: 99.0,
                            null_frac: 0.0,
                        },
                        histogram: hfqo_stats::Histogram::build(
                            (0..100).map(|i| i as f64).collect(),
                            10,
                        ),
                        mcvs: vec![],
                    }],
                })
                .collect(),
        );
        (graph, stats)
    }

    #[test]
    fn dimensions() {
        let f = Featurizer::new(10);
        assert_eq!(f.state_dim(), 2 * 100 + 40);
        assert_eq!(f.action_dim(), 100);
        assert_eq!(f.max_rels(), 10);
        let (x, y) = f.decode_pair(f.encode_pair(3, 7));
        assert_eq!((x, y), (3, 7));
    }

    #[test]
    fn initial_state_features() {
        let (graph, stats) = graph4();
        let est = EstimatedCardinality::new(&stats);
        let f = Featurizer::new(6);
        let forest = Forest::initial(4);
        let mut out = Vec::new();
        f.featurize(&graph, &forest, &est, &mut out);
        assert_eq!(out.len(), f.state_dim());
        // Each initial subtree is a leaf at depth 0 → weight 1.0 on its
        // own relation.
        for slot in 0..4 {
            assert_eq!(out[slot * 6 + slot], 1.0);
        }
        // Unused slots are empty.
        assert!(out[4 * 6..6 * 6].iter().all(|&v| v == 0.0));
        // Adjacency marks the chain edges symmetrically.
        let adj = 36;
        assert_eq!(out[adj + 1], 1.0); // 0-1
        assert_eq!(out[adj + 6], 1.0); // 1-0
        assert_eq!(out[adj + 3], 0.0); // 0-3 absent
                                       // Selection features: r1 flagged with selectivity < 1.
        let sel = 72;
        assert_eq!(out[sel + 2], 1.0);
        assert!(out[sel + 3] < 0.9);
        // r0 has no selection → flag 0, selectivity 1.
        assert_eq!(out[sel], 0.0);
        assert_eq!(out[sel + 1], 1.0);
        // Subtree-size features: live slots get positive log-sizes,
        // dead slots stay zero.
        let size_base = 72 + 12;
        for slot in 0..4 {
            assert!(out[size_base + slot] > 0.0, "slot {slot}");
        }
        assert_eq!(out[size_base + 4], 0.0);
        // Raw relation sizes present for every query relation.
        let raw_base = 72 + 18;
        for r in 0..4 {
            assert!(out[raw_base + r] > 0.0, "rel {r}");
        }
    }

    #[test]
    fn merged_subtree_weights_halve() {
        let (graph, stats) = graph4();
        let est = EstimatedCardinality::new(&stats);
        let f = Featurizer::new(6);
        let mut forest = Forest::initial(4);
        forest.merge(0, 1); // forest: [t2, t3, (t0 ⋈ t1)]
        let mut out = Vec::new();
        f.featurize(&graph, &forest, &est, &mut out);
        // Slot 2 holds the merged tree: both rels at depth 1 → 0.5.
        assert_eq!(out[2 * 6], 0.5);
        assert_eq!(out[2 * 6 + 1], 0.5);
        // Slot 0 now holds t2.
        assert_eq!(out[2], 1.0);
    }

    #[test]
    fn mask_excludes_diagonal_and_dead_slots() {
        let (graph, _) = graph4();
        let f = Featurizer::new(6);
        let forest = Forest::initial(4);
        let mut mask = Vec::new();
        f.action_mask(&graph, &forest, false, &mut mask);
        assert_eq!(mask.len(), 36);
        assert!(!mask[f.encode_pair(2, 2)]);
        assert!(mask[f.encode_pair(0, 3)]);
        assert!(mask[f.encode_pair(3, 0)]);
        assert!(!mask[f.encode_pair(0, 4)]); // slot 4 empty
        assert!(!mask[f.encode_pair(5, 1)]);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 4 * 3);
    }

    #[test]
    fn connected_mask_follows_join_graph() {
        let (graph, _) = graph4();
        let f = Featurizer::new(6);
        let forest = Forest::initial(4);
        let mut mask = Vec::new();
        f.action_mask(&graph, &forest, true, &mut mask);
        // Chain 0-1-2-3: (0,1) ok, (0,2) not.
        assert!(mask[f.encode_pair(0, 1)]);
        assert!(!mask[f.encode_pair(0, 2)]);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 6);
    }

    #[test]
    fn disconnected_fallback_unmasks() {
        // No join edges at all: require_connected would mask everything,
        // so the fallback must re-open all pairs.
        let (graph, _) = graph4();
        let no_joins = QueryGraph::new(graph.relations().to_vec(), vec![], vec![], vec![], vec![]);
        let f = Featurizer::new(6);
        let forest = Forest::initial(4);
        let mut mask = Vec::new();
        f.action_mask(&no_joins, &forest, true, &mut mask);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 12);
    }
}
