//! The ReJOIN join-ordering environment (§3).
//!
//! *Episode = query.* The state is a forest of join subtrees; each action
//! merges an ordered pair of subtrees; after `n − 1` merges the episode
//! terminates, the finished ordering is handed to the traditional
//! machinery for operator and access-path selection
//! ([`crate::planfix`]), and the terminal reward is computed from the
//! resulting plan (cost model or latency, per [`RewardMode`]). All
//! intermediate rewards are zero — the sparse-reward structure §4
//! discusses.

use crate::featurize::Featurizer;
use crate::planfix::plan_from_tree;
use crate::reward::RewardMode;
use hfqo_catalog::Catalog;
use hfqo_cost::{CostModel, CostParams, LatencyModel};
use hfqo_exec::TrueCardinality;
use hfqo_opt::TraditionalOptimizer;
use hfqo_query::{Forest, PhysicalPlan, QueryGraph};
use hfqo_rl::{Environment, StepResult};
use hfqo_stats::{EstimatedCardinality, StatsCatalog};
use hfqo_storage::Database;
use rand::rngs::StdRng;
use rand::Rng;

/// Where an episode's latency observation comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencySource {
    /// Analytic simulation over true cardinalities (fast; the default).
    Simulated,
    /// Real execution through the vectorized batch executor: the plan
    /// runs under the given work budget and the *observed* work units
    /// convert to milliseconds via the latency model's `ms_per_unit`.
    /// Budget-capped plans report the budget itself, so catastrophic
    /// plans stay cheap to observe and look exactly as bad as the
    /// paper's footnote 2 wants them to.
    Executed(hfqo_exec::ExecConfig),
}

/// Shared, read-only context the environments cost and simulate against.
///
/// Holds only shared references into the world plus owned model
/// parameters, so it is `Clone`: parallel training builds one context
/// per worker over the same `Database`/`StatsCatalog`.
#[derive(Clone)]
pub struct EnvContext<'a> {
    /// The database (data + catalog).
    pub db: &'a Database,
    /// Table statistics.
    pub stats: &'a StatsCatalog,
    /// Cost-model parameters (the `M(t)` the reward uses).
    pub cost_params: CostParams,
    /// Latency simulation model (for latency-based rewards and logging).
    pub latency_model: LatencyModel,
    /// How latency-based rewards observe latency.
    pub latency_source: LatencySource,
}

impl<'a> EnvContext<'a> {
    /// A context with PostgreSQL-like costing and the default latency
    /// model.
    pub fn new(db: &'a Database, stats: &'a StatsCatalog) -> Self {
        Self {
            db,
            stats,
            cost_params: CostParams::postgres_like(),
            latency_model: LatencyModel::default(),
            latency_source: LatencySource::Simulated,
        }
    }

    /// Switches latency observation to real execution under `config`
    /// (builder style).
    pub fn with_executed_latency(mut self, config: hfqo_exec::ExecConfig) -> Self {
        self.latency_source = LatencySource::Executed(config);
        self
    }

    /// The catalog.
    pub fn catalog(&self) -> &'a Catalog {
        self.db.catalog()
    }

    /// A cost model over this context.
    pub fn cost_model(&self) -> CostModel<'_> {
        CostModel::new(&self.cost_params, self.stats)
    }

    /// The estimated-cardinality source.
    pub fn estimator(&self) -> EstimatedCardinality<'a> {
        EstimatedCardinality::new(self.stats)
    }
}

/// How the environment walks its workload across episodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOrder {
    /// Round-robin in workload order.
    Cycle,
    /// Uniformly random query per episode.
    Shuffle,
    /// Always the same query (used for evaluation).
    Fixed(usize),
}

/// Everything known about a finished episode.
#[derive(Debug, Clone)]
pub struct EpisodeOutcome {
    /// Index of the query in the workload.
    pub query_idx: usize,
    /// The query's label, when set.
    pub label: Option<String>,
    /// The agent's finished physical plan.
    pub plan: PhysicalPlan,
    /// `M(t)` of the agent's plan (estimated cardinalities).
    pub agent_cost: f64,
    /// The expert's cost for the same query.
    pub expert_cost: f64,
    /// Observed latency of the agent's plan, when the reward needed it
    /// (simulated or executed, per the context's [`LatencySource`]).
    pub latency_ms: Option<f64>,
    /// Work units actually executed, when the latency observation ran
    /// the plan through the batch engine.
    pub executed_work: Option<u64>,
    /// The terminal reward granted.
    pub reward: f32,
}

/// Executes `plan` with the batch engine — through the
/// zero-materialisation stats path, since only the work total is
/// observed — and converts the work units to milliseconds.
/// Budget-capped executions report the budget as their work floor
/// (mirroring the true-cardinality oracle), so catastrophic plans
/// remain cheap to observe yet maximally penalised. Any *other*
/// execution failure is an environment misconfiguration (e.g. indexes
/// never built); silently pricing it would corrupt every reward, so it
/// panics with the underlying error instead.
pub(crate) fn executed_latency(
    db: &Database,
    graph: &QueryGraph,
    plan: &PhysicalPlan,
    config: hfqo_exec::ExecConfig,
    ms_per_unit: f64,
) -> (f64, u64) {
    let work = match hfqo_exec::execute_for_stats(db, graph, plan, config) {
        Ok((_rows, work)) => work,
        Err(hfqo_exec::ExecError::BudgetExceeded { budget, .. }) => budget,
        Err(e) => panic!("executed-latency observation failed (not a budget abort): {e}"),
    };
    ((work as f64 * ms_per_unit).max(0.001), work)
}

/// The join-order environment.
pub struct JoinOrderEnv<'a> {
    ctx: EnvContext<'a>,
    queries: &'a [QueryGraph],
    featurizer: Featurizer,
    order: QueryOrder,
    reward_mode: RewardMode,
    /// Disallow cross-join pair actions via masking (ReJOIN allowed them;
    /// default `false`).
    pub require_connected: bool,
    cursor: usize,
    current: usize,
    forest: Forest,
    expert_costs: Vec<Option<f64>>,
    oracles: Vec<Option<TrueCardinality<'a>>>,
    last_outcome: Option<EpisodeOutcome>,
}

impl<'a> JoinOrderEnv<'a> {
    /// Creates an environment over a workload.
    ///
    /// `max_rels` must be at least the largest relation count in
    /// `queries`.
    pub fn new(
        ctx: EnvContext<'a>,
        queries: &'a [QueryGraph],
        max_rels: usize,
        order: QueryOrder,
        reward_mode: RewardMode,
    ) -> Self {
        assert!(!queries.is_empty(), "workload must not be empty");
        let max_in_workload = queries
            .iter()
            .map(QueryGraph::relation_count)
            .max()
            .unwrap_or(0);
        assert!(
            max_rels >= max_in_workload,
            "max_rels {max_rels} below workload maximum {max_in_workload}"
        );
        let n = queries.len();
        Self {
            ctx,
            queries,
            featurizer: Featurizer::new(max_rels),
            order,
            reward_mode,
            require_connected: false,
            cursor: 0,
            current: 0,
            forest: Forest::initial(queries[0].relation_count()),
            expert_costs: vec![None; n],
            oracles: std::iter::repeat_with(|| None).take(n).collect(),
            last_outcome: None,
        }
    }

    /// The featurizer (shared with agents for shape information).
    pub fn featurizer(&self) -> Featurizer {
        self.featurizer
    }

    /// The workload.
    pub fn queries(&self) -> &'a [QueryGraph] {
        self.queries
    }

    /// The context.
    pub fn context(&self) -> &EnvContext<'a> {
        &self.ctx
    }

    /// Changes the query ordering policy.
    pub fn set_order(&mut self, order: QueryOrder) {
        self.order = order;
    }

    /// The current query ordering policy.
    pub fn order(&self) -> QueryOrder {
        self.order
    }

    /// Swaps the reward mode (used by the bootstrap trainer's phase
    /// switch).
    pub fn set_reward_mode(&mut self, mode: RewardMode) {
        self.reward_mode = mode;
    }

    /// The current reward mode.
    pub fn reward_mode(&self) -> &RewardMode {
        &self.reward_mode
    }

    /// The outcome of the most recently finished episode.
    pub fn last_outcome(&self) -> Option<&EpisodeOutcome> {
        self.last_outcome.as_ref()
    }

    /// The expert's plan cost for query `idx` (computed once, cached).
    pub fn expert_cost(&mut self, idx: usize) -> f64 {
        if let Some(c) = self.expert_costs[idx] {
            return c;
        }
        let optimizer = TraditionalOptimizer::new(self.ctx.catalog(), self.ctx.stats)
            .with_params(self.ctx.cost_params.clone());
        let cost = optimizer
            .plan(&self.queries[idx])
            .map(|p| p.cost)
            .unwrap_or(f64::INFINITY);
        self.expert_costs[idx] = Some(cost);
        cost
    }

    /// Simulated latency of `plan` for query `idx` via the
    /// true-cardinality oracle.
    pub fn simulate_latency(&mut self, idx: usize, plan: &PhysicalPlan, rng: &mut StdRng) -> f64 {
        if self.oracles[idx].is_none() {
            self.oracles[idx] = Some(TrueCardinality::new(self.ctx.db));
        }
        let oracle = self.oracles[idx].as_ref().expect("just initialised");
        self.ctx
            .latency_model
            .simulate(&self.queries[idx], plan, self.ctx.stats, oracle, rng)
            .millis
    }

    /// Observes the latency of `plan` for query `idx` through the
    /// context's [`LatencySource`]: analytic simulation, or real
    /// execution via the batch engine. Returns the latency in
    /// milliseconds and, for executed observations, the work units
    /// performed.
    pub fn observe_latency(
        &mut self,
        idx: usize,
        plan: &PhysicalPlan,
        rng: &mut StdRng,
    ) -> (f64, Option<u64>) {
        match self.ctx.latency_source {
            LatencySource::Simulated => (self.simulate_latency(idx, plan, rng), None),
            LatencySource::Executed(config) => {
                let (ms, work) = executed_latency(
                    self.ctx.db,
                    &self.queries[idx],
                    plan,
                    config,
                    self.ctx.latency_model.ms_per_unit,
                );
                (ms, Some(work))
            }
        }
    }

    fn finish_episode(&mut self, rng: &mut StdRng) -> f32 {
        let tree = self
            .forest
            .clone()
            .into_tree()
            .expect("terminal forest has one tree");
        let model = self.ctx.cost_model();
        let est = self.ctx.estimator();
        let plan = plan_from_tree(
            &self.queries[self.current],
            &tree,
            self.ctx.catalog(),
            &model,
            &est,
        );
        let agent_cost = model
            .plan_cost(&self.queries[self.current], &plan, &est)
            .total;
        let expert_cost = self.expert_cost(self.current);
        let (latency_ms, executed_work) = if self.reward_mode.needs_latency() {
            let (ms, work) = self.observe_latency(self.current, &plan, rng);
            (Some(ms), work)
        } else {
            (None, None)
        };
        let reward = self
            .reward_mode
            .terminal_reward(agent_cost, expert_cost, latency_ms);
        self.last_outcome = Some(EpisodeOutcome {
            query_idx: self.current,
            label: self.queries[self.current].label.clone(),
            plan,
            agent_cost,
            expert_cost,
            latency_ms,
            executed_work,
            reward,
        });
        reward
    }
}

impl Environment for JoinOrderEnv<'_> {
    fn state_dim(&self) -> usize {
        self.featurizer.state_dim()
    }

    fn action_dim(&self) -> usize {
        self.featurizer.action_dim()
    }

    fn reset(&mut self, rng: &mut StdRng) {
        self.current = match self.order {
            QueryOrder::Cycle => {
                let q = self.cursor % self.queries.len();
                self.cursor += 1;
                q
            }
            QueryOrder::Shuffle => rng.gen_range(0..self.queries.len()),
            QueryOrder::Fixed(idx) => idx.min(self.queries.len() - 1),
        };
        self.forest = Forest::initial(self.queries[self.current].relation_count());
    }

    fn state_features(&self, out: &mut Vec<f32>) {
        self.featurizer.featurize(
            &self.queries[self.current],
            &self.forest,
            &self.ctx.estimator(),
            out,
        );
    }

    fn action_mask(&self, out: &mut Vec<bool>) {
        self.featurizer.action_mask(
            &self.queries[self.current],
            &self.forest,
            self.require_connected,
            out,
        );
    }

    fn step(&mut self, action: usize, rng: &mut StdRng) -> StepResult {
        let (x, y) = self.featurizer.decode_pair(action);
        let merged = self.forest.merge(x, y);
        debug_assert!(merged, "masked actions must be valid merges");
        if self.forest.is_terminal() {
            let reward = self.finish_episode(rng);
            StepResult { reward, done: true }
        } else {
            StepResult {
                reward: 0.0,
                done: false,
            }
        }
    }

    fn is_terminal(&self) -> bool {
        self.forest.is_terminal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_opt::test_support::{chain_query, TestDb};
    use rand::SeedableRng;

    fn env_fixtures() -> (TestDb, Vec<QueryGraph>) {
        let db = TestDb::chain(4, 300);
        let queries = vec![chain_query(&db, 4).with_label("q0")];
        (db, queries)
    }

    #[test]
    fn episode_runs_n_minus_one_steps() {
        let (db, queries) = env_fixtures();
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env = JoinOrderEnv::new(
            ctx,
            &queries,
            6,
            QueryOrder::Cycle,
            RewardMode::RelativeToExpert,
        );
        let mut rng = StdRng::seed_from_u64(0);
        env.reset(&mut rng);
        let mut steps = 0;
        let mut mask = Vec::new();
        while !env.is_terminal() {
            env.action_mask(&mut mask);
            let action = mask.iter().position(|&m| m).expect("valid action");
            let result = env.step(action, &mut rng);
            steps += 1;
            if result.done {
                assert!(result.reward > 0.0);
            } else {
                assert_eq!(result.reward, 0.0, "non-terminal rewards are zero");
            }
        }
        assert_eq!(steps, 3);
        let outcome = env.last_outcome().expect("episode finished");
        assert_eq!(outcome.query_idx, 0);
        assert_eq!(outcome.label.as_deref(), Some("q0"));
        outcome.plan.validate(&queries[0]).unwrap();
        assert!(outcome.agent_cost > 0.0);
        assert!(outcome.expert_cost > 0.0);
        assert!(outcome.latency_ms.is_none());
    }

    #[test]
    fn executed_latency_observes_real_work() {
        let (db, queries) = env_fixtures();
        let ctx = EnvContext::new(&db.db, &db.stats)
            .with_executed_latency(hfqo_exec::ExecConfig::default());
        let mut env = JoinOrderEnv::new(
            ctx,
            &queries,
            6,
            QueryOrder::Cycle,
            RewardMode::InverseLatency,
        );
        let mut rng = StdRng::seed_from_u64(4);
        env.reset(&mut rng);
        let mut mask = Vec::new();
        while !env.is_terminal() {
            env.action_mask(&mut mask);
            let action = mask.iter().position(|&m| m).expect("valid action");
            env.step(action, &mut rng);
        }
        let outcome = env.last_outcome().expect("episode finished");
        let work = outcome.executed_work.expect("executed observation");
        assert!(work > 0);
        let ms = outcome.latency_ms.expect("latency observed");
        // Latency is exactly the executed work scaled to milliseconds.
        let expected = (work as f64 * LatencyModel::default().ms_per_unit).max(0.001);
        assert!((ms - expected).abs() < 1e-9, "{ms} vs {expected}");
        // Executed observations are deterministic: the same plan costs
        // the same work under the batch engine.
        let plan = outcome.plan.clone();
        let (ms2, work2) = env.observe_latency(0, &plan, &mut rng);
        assert_eq!(work2, Some(work));
        assert_eq!(ms2, ms);
    }

    #[test]
    fn budget_capped_executed_latency_floors_at_budget() {
        let (db, queries) = env_fixtures();
        // A 100-unit budget is far below any real 4-relation join.
        let ctx = EnvContext::new(&db.db, &db.stats)
            .with_executed_latency(hfqo_exec::ExecConfig::with_budget(100));
        let mut env = JoinOrderEnv::new(
            ctx,
            &queries,
            6,
            QueryOrder::Cycle,
            RewardMode::InverseLatency,
        );
        let mut rng = StdRng::seed_from_u64(5);
        env.reset(&mut rng);
        let mut mask = Vec::new();
        while !env.is_terminal() {
            env.action_mask(&mut mask);
            let action = mask.iter().position(|&m| m).expect("valid action");
            env.step(action, &mut rng);
        }
        let outcome = env.last_outcome().expect("episode finished");
        assert_eq!(outcome.executed_work, Some(100), "budget is the floor");
    }

    #[test]
    fn figure2_episode_replay() {
        // Actions (0,2), (0,1), (0,1) — the paper's Figure 2 — must
        // produce ((A ⋈ C) ⋈ (B ⋈ D)).
        let (db, queries) = env_fixtures();
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env = JoinOrderEnv::new(
            ctx,
            &queries,
            6,
            QueryOrder::Fixed(0),
            RewardMode::InverseCost,
        );
        let mut rng = StdRng::seed_from_u64(0);
        env.reset(&mut rng);
        let f = env.featurizer();
        env.step(f.encode_pair(0, 2), &mut rng);
        env.step(f.encode_pair(0, 1), &mut rng);
        let last = env.step(f.encode_pair(0, 1), &mut rng);
        assert!(last.done);
        let outcome = env.last_outcome().expect("finished");
        assert_eq!(
            outcome.plan.root.join_tree().compact(),
            "((0 ⋈ 2) ⋈ (1 ⋈ 3))"
        );
    }

    #[test]
    fn latency_reward_populates_latency() {
        let (db, queries) = env_fixtures();
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env = JoinOrderEnv::new(
            ctx,
            &queries,
            6,
            QueryOrder::Cycle,
            RewardMode::InverseLatency,
        );
        let mut rng = StdRng::seed_from_u64(1);
        env.reset(&mut rng);
        let mut mask = Vec::new();
        while !env.is_terminal() {
            env.action_mask(&mut mask);
            let action = mask.iter().position(|&m| m).expect("valid action");
            env.step(action, &mut rng);
        }
        let outcome = env.last_outcome().expect("finished");
        assert!(outcome.latency_ms.expect("latency simulated") > 0.0);
    }

    #[test]
    fn expert_cost_is_cached() {
        let (db, queries) = env_fixtures();
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env = JoinOrderEnv::new(
            ctx,
            &queries,
            6,
            QueryOrder::Cycle,
            RewardMode::RelativeToExpert,
        );
        let a = env.expert_cost(0);
        let b = env.expert_cost(0);
        assert_eq!(a, b);
        assert!(a.is_finite());
    }

    #[test]
    fn query_order_modes() {
        let db = TestDb::chain(3, 100);
        let queries = vec![chain_query(&db, 3), chain_query(&db, 2)];
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env =
            JoinOrderEnv::new(ctx, &queries, 4, QueryOrder::Cycle, RewardMode::InverseCost);
        let mut rng = StdRng::seed_from_u64(2);
        env.reset(&mut rng);
        assert_eq!(env.current, 0);
        env.reset(&mut rng);
        assert_eq!(env.current, 1);
        env.reset(&mut rng);
        assert_eq!(env.current, 0);
        env.set_order(QueryOrder::Fixed(1));
        env.reset(&mut rng);
        assert_eq!(env.current, 1);
    }
}
