//! The full execution-plan environment (§4 / §5.3).
//!
//! Extends the join-order episode with the remaining decisions of the
//! simplified pipeline in the paper's Figure 8 — index (access-path)
//! selection, join operator selection, and aggregate operator selection —
//! each gated by a [`StageSet`] flag. Disabled stages are decided by the
//! traditional machinery, exactly as in the pipeline-based incremental
//! learning proposal (§5.3.1): ReJOIN is "essentially this first phase".
//!
//! The action space stays one fixed-width head of `max_rels²` outputs;
//! non-pair phases reuse the low action ids under a phase-specific mask,
//! and the state carries a phase one-hot plus the relation under decision
//! so the network can tell the overloaded ids apart.

use crate::env_join::{EnvContext, EpisodeOutcome, QueryOrder};
use crate::featurize::Featurizer;
use crate::incremental::StageSet;
use crate::planfix::best_algo_fixed_sides;
use crate::reward::RewardMode;
use hfqo_exec::TrueCardinality;
use hfqo_opt::physical::{add_aggregate_if_needed, best_access_path};
use hfqo_opt::TraditionalOptimizer;
use hfqo_query::{
    AccessPath, AggAlgo, Forest, JoinAlgo, PhysicalPlan, PlanNode, QueryGraph, RelId,
};
use hfqo_rl::{Environment, StepResult};
use hfqo_sql::CompareOp;
use rand::rngs::StdRng;
use rand::Rng;

/// Episode phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Choosing the access path of one relation.
    AccessPath {
        /// The relation currently under decision.
        rel: usize,
    },
    /// Choosing the next subtree pair to join.
    PairSelection,
    /// Choosing the join algorithm for the pair just merged.
    JoinOperator,
    /// Choosing the aggregate operator.
    Aggregate,
    /// Episode finished.
    Done,
}

impl Phase {
    fn one_hot_index(self) -> usize {
        match self {
            Phase::AccessPath { .. } => 0,
            Phase::PairSelection => 1,
            Phase::JoinOperator => 2,
            Phase::Aggregate => 3,
            Phase::Done => 1, // terminal states are never featurised
        }
    }
}

/// The full-plan environment.
pub struct FullPlanEnv<'a> {
    ctx: EnvContext<'a>,
    queries: &'a [QueryGraph],
    featurizer: Featurizer,
    order: QueryOrder,
    reward_mode: RewardMode,
    stages: StageSet,
    /// Disallow cross-join pair actions via masking.
    pub require_connected: bool,
    cursor: usize,
    current: usize,
    forest: Forest,
    nodes: Vec<PlanNode>,
    phase: Phase,
    scan_candidates: Vec<AccessPath>,
    pending_pair: Option<(PlanNode, PlanNode, Vec<usize>)>,
    expert_costs: Vec<Option<f64>>,
    oracles: Vec<Option<TrueCardinality<'a>>>,
    last_outcome: Option<EpisodeOutcome>,
}

impl<'a> FullPlanEnv<'a> {
    /// Creates a full-plan environment.
    pub fn new(
        ctx: EnvContext<'a>,
        queries: &'a [QueryGraph],
        max_rels: usize,
        order: QueryOrder,
        reward_mode: RewardMode,
        stages: StageSet,
    ) -> Self {
        assert!(!queries.is_empty(), "workload must not be empty");
        let max_in_workload = queries
            .iter()
            .map(QueryGraph::relation_count)
            .max()
            .unwrap_or(0);
        assert!(
            max_rels >= max_in_workload,
            "max_rels {max_rels} below workload maximum {max_in_workload}"
        );
        let n = queries.len();
        Self {
            ctx,
            queries,
            featurizer: Featurizer::new(max_rels),
            order,
            reward_mode,
            stages,
            require_connected: false,
            cursor: 0,
            current: 0,
            forest: Forest::initial(queries[0].relation_count()),
            nodes: Vec::new(),
            phase: Phase::Done,
            scan_candidates: Vec::new(),
            pending_pair: None,
            expert_costs: vec![None; n],
            oracles: std::iter::repeat_with(|| None).take(n).collect(),
            last_outcome: None,
        }
    }

    /// The featurizer.
    pub fn featurizer(&self) -> Featurizer {
        self.featurizer
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The stage configuration.
    pub fn stages(&self) -> StageSet {
        self.stages
    }

    /// Replaces the stage configuration (used by pipeline curricula; the
    /// change applies from the next reset).
    pub fn set_stages(&mut self, stages: StageSet) {
        self.stages = stages;
    }

    /// Changes the query ordering policy.
    pub fn set_order(&mut self, order: QueryOrder) {
        self.order = order;
    }

    /// The current query ordering policy.
    pub fn order(&self) -> QueryOrder {
        self.order
    }

    /// The outcome of the most recently finished episode.
    pub fn last_outcome(&self) -> Option<&EpisodeOutcome> {
        self.last_outcome.as_ref()
    }

    /// The workload.
    pub fn queries(&self) -> &'a [QueryGraph] {
        self.queries
    }

    fn graph(&self) -> &'a QueryGraph {
        &self.queries[self.current]
    }

    /// Access-path candidates for a relation: sequential scan plus every
    /// index scan applicable to one of its selections.
    fn compute_scan_candidates(&self, rel: usize) -> Vec<AccessPath> {
        let graph = self.graph();
        let mut cands = vec![AccessPath::SeqScan];
        let rel_id = RelId(rel as u32);
        for sel_idx in graph.selections_on(rel_id) {
            let sel = &graph.selections()[sel_idx];
            if sel.op == CompareOp::Neq {
                continue;
            }
            let col_ref =
                hfqo_catalog::ColumnRef::new(graph.relation(rel_id).table, sel.column.column);
            for (index_id, def) in self.ctx.catalog().indexes_on(col_ref) {
                let range_op = !matches!(sel.op, CompareOp::Eq);
                if range_op && !def.kind().supports_range() {
                    continue;
                }
                cands.push(AccessPath::IndexScan {
                    index: index_id,
                    driving_selection: sel_idx,
                });
            }
        }
        cands
    }

    fn enter_access_phase(&mut self, rel: usize) {
        let n = self.graph().relation_count();
        if rel >= n {
            self.phase = Phase::PairSelection;
            return;
        }
        self.scan_candidates = self.compute_scan_candidates(rel);
        self.phase = Phase::AccessPath { rel };
    }

    fn after_join_completed(&mut self, rng: &mut StdRng) -> StepResult {
        if !self.forest.is_terminal() {
            self.phase = Phase::PairSelection;
            return StepResult {
                reward: 0.0,
                done: false,
            };
        }
        let graph = self.graph();
        let needs_agg = !graph.aggregates().is_empty() || !graph.group_by().is_empty();
        if needs_agg && self.stages.agg_operators {
            self.phase = Phase::Aggregate;
            StepResult {
                reward: 0.0,
                done: false,
            }
        } else {
            let model = self.ctx.cost_model();
            let est = self.ctx.estimator();
            let root = self.nodes.pop().expect("terminal forest has one node");
            let root = add_aggregate_if_needed(graph, root, &model, &est);
            self.finish(root, rng)
        }
    }

    fn finish(&mut self, root: PlanNode, rng: &mut StdRng) -> StepResult {
        let plan = PhysicalPlan::new(root);
        let model = self.ctx.cost_model();
        let est = self.ctx.estimator();
        let agent_cost = model.plan_cost(self.graph(), &plan, &est).total;
        let expert_cost = self.expert_cost(self.current);
        let (latency_ms, executed_work) = if self.reward_mode.needs_latency() {
            match self.ctx.latency_source {
                crate::env_join::LatencySource::Simulated => {
                    if self.oracles[self.current].is_none() {
                        self.oracles[self.current] = Some(TrueCardinality::new(self.ctx.db));
                    }
                    let oracle = self.oracles[self.current].as_ref().expect("initialised");
                    let ms = self
                        .ctx
                        .latency_model
                        .simulate(self.graph(), &plan, self.ctx.stats, oracle, rng)
                        .millis;
                    (Some(ms), None)
                }
                crate::env_join::LatencySource::Executed(config) => {
                    let (ms, work) = crate::env_join::executed_latency(
                        self.ctx.db,
                        self.graph(),
                        &plan,
                        config,
                        self.ctx.latency_model.ms_per_unit,
                    );
                    (Some(ms), Some(work))
                }
            }
        } else {
            (None, None)
        };
        let reward = self
            .reward_mode
            .terminal_reward(agent_cost, expert_cost, latency_ms);
        self.last_outcome = Some(EpisodeOutcome {
            query_idx: self.current,
            label: self.graph().label.clone(),
            plan,
            agent_cost,
            expert_cost,
            latency_ms,
            executed_work,
            reward,
        });
        self.phase = Phase::Done;
        StepResult { reward, done: true }
    }

    /// The expert's plan cost for query `idx` (computed once, cached).
    pub fn expert_cost(&mut self, idx: usize) -> f64 {
        if let Some(c) = self.expert_costs[idx] {
            return c;
        }
        let optimizer = TraditionalOptimizer::new(self.ctx.catalog(), self.ctx.stats)
            .with_params(self.ctx.cost_params.clone());
        let cost = optimizer
            .plan(&self.queries[idx])
            .map(|p| p.cost)
            .unwrap_or(f64::INFINITY);
        self.expert_costs[idx] = Some(cost);
        cost
    }

    fn legal_join_algos(&self, conds: &[usize]) -> [bool; 3] {
        let has_eq = conds
            .iter()
            .any(|&c| self.graph().joins()[c].op == CompareOp::Eq);
        // Order matches JoinAlgo::ALL: NestedLoop, Hash, Merge.
        [true, has_eq, has_eq]
    }
}

impl Environment for FullPlanEnv<'_> {
    fn state_dim(&self) -> usize {
        // Base features + phase one-hot + relation-under-decision one-hot.
        self.featurizer.state_dim() + 4 + self.featurizer.max_rels()
    }

    fn action_dim(&self) -> usize {
        self.featurizer.action_dim()
    }

    fn reset(&mut self, rng: &mut StdRng) {
        self.current = match self.order {
            QueryOrder::Cycle => {
                let q = self.cursor % self.queries.len();
                self.cursor += 1;
                q
            }
            QueryOrder::Shuffle => rng.gen_range(0..self.queries.len()),
            QueryOrder::Fixed(idx) => idx.min(self.queries.len() - 1),
        };
        let n = self.graph().relation_count();
        self.forest = Forest::initial(n);
        self.pending_pair = None;
        self.last_outcome = None;
        if self.stages.index_selection {
            self.nodes = Vec::with_capacity(n);
            self.enter_access_phase(0);
        } else {
            // The traditional machinery picks access paths.
            let model = self.ctx.cost_model();
            let est = self.ctx.estimator();
            self.nodes = (0..n)
                .map(|r| {
                    best_access_path(
                        self.graph(),
                        RelId(r as u32),
                        self.ctx.catalog(),
                        &model,
                        &est,
                    )
                    .0
                })
                .collect();
            self.phase = Phase::PairSelection;
        }
    }

    fn state_features(&self, out: &mut Vec<f32>) {
        self.featurizer
            .featurize(self.graph(), &self.forest, &self.ctx.estimator(), out);
        let mut phase_hot = [0.0f32; 4];
        phase_hot[self.phase.one_hot_index()] = 1.0;
        out.extend_from_slice(&phase_hot);
        let mut rel_hot = vec![0.0f32; self.featurizer.max_rels()];
        if let Phase::AccessPath { rel } = self.phase {
            if rel < rel_hot.len() {
                rel_hot[rel] = 1.0;
            }
        }
        out.extend_from_slice(&rel_hot);
    }

    fn action_mask(&self, out: &mut Vec<bool>) {
        match self.phase {
            Phase::AccessPath { .. } => {
                out.clear();
                out.resize(self.featurizer.action_dim(), false);
                for i in 0..self.scan_candidates.len().min(out.len()) {
                    out[i] = true;
                }
            }
            Phase::PairSelection => {
                self.featurizer.action_mask(
                    self.graph(),
                    &self.forest,
                    self.require_connected,
                    out,
                );
            }
            Phase::JoinOperator => {
                out.clear();
                out.resize(self.featurizer.action_dim(), false);
                let conds = self
                    .pending_pair
                    .as_ref()
                    .map(|(_, _, c)| c.clone())
                    .unwrap_or_default();
                let legal = self.legal_join_algos(&conds);
                out[..3].copy_from_slice(&legal);
            }
            Phase::Aggregate => {
                out.clear();
                out.resize(self.featurizer.action_dim(), false);
                out[0] = true;
                out[1] = true;
            }
            Phase::Done => {
                out.clear();
                out.resize(self.featurizer.action_dim(), false);
            }
        }
    }

    fn step(&mut self, action: usize, rng: &mut StdRng) -> StepResult {
        match self.phase {
            Phase::AccessPath { rel } => {
                let path = self.scan_candidates[action.min(self.scan_candidates.len() - 1)];
                self.nodes.push(PlanNode::Scan {
                    rel: RelId(rel as u32),
                    path,
                });
                self.enter_access_phase(rel + 1);
                StepResult {
                    reward: 0.0,
                    done: false,
                }
            }
            Phase::PairSelection => {
                let (x, y) = self.featurizer.decode_pair(action);
                let conds = self
                    .graph()
                    .joins_between(self.nodes[x].rel_set(), self.nodes[y].rel_set());
                let (hi, lo) = if x > y { (x, y) } else { (y, x) };
                let hi_node = self.nodes.remove(hi);
                let lo_node = self.nodes.remove(lo);
                let (left, right) = if x < y {
                    (lo_node, hi_node)
                } else {
                    (hi_node, lo_node)
                };
                let merged = self.forest.merge(x, y);
                debug_assert!(merged, "masked actions must be valid merges");
                if self.stages.join_operators {
                    self.pending_pair = Some((left, right, conds));
                    self.phase = Phase::JoinOperator;
                    StepResult {
                        reward: 0.0,
                        done: false,
                    }
                } else {
                    let model = self.ctx.cost_model();
                    let est = self.ctx.estimator();
                    let node = best_algo_fixed_sides(self.graph(), left, right, &model, &est);
                    self.nodes.push(node);
                    self.after_join_completed(rng)
                }
            }
            Phase::JoinOperator => {
                let (left, right, conds) = self.pending_pair.take().expect("pair pending");
                let algo = JoinAlgo::ALL[action.min(2)];
                self.nodes.push(PlanNode::Join {
                    algo,
                    conds,
                    left: Box::new(left),
                    right: Box::new(right),
                });
                self.after_join_completed(rng)
            }
            Phase::Aggregate => {
                let algo = AggAlgo::ALL[action.min(1)];
                let input = self.nodes.pop().expect("terminal forest has one node");
                let root = PlanNode::Aggregate {
                    algo,
                    input: Box::new(input),
                };
                self.finish(root, rng)
            }
            Phase::Done => StepResult {
                reward: 0.0,
                done: true,
            },
        }
    }

    fn is_terminal(&self) -> bool {
        self.phase == Phase::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_opt::test_support::{chain_query, with_count, TestDb};
    use rand::SeedableRng;

    fn fixtures(with_agg: bool) -> (TestDb, Vec<QueryGraph>) {
        let db = TestDb::chain(3, 200);
        let mut q = chain_query(&db, 3);
        if with_agg {
            q = with_count(q);
        }
        (db, vec![q])
    }

    fn run_random_episode(env: &mut FullPlanEnv<'_>, rng: &mut StdRng) -> usize {
        env.reset(rng);
        let mut mask = Vec::new();
        let mut steps = 0;
        while !env.is_terminal() {
            env.action_mask(&mut mask);
            let valid: Vec<usize> = mask
                .iter()
                .enumerate()
                .filter(|(_, &m)| m)
                .map(|(i, _)| i)
                .collect();
            assert!(
                !valid.is_empty(),
                "no valid action in phase {:?}",
                env.phase()
            );
            let action = valid[rng.gen_range(0..valid.len())];
            env.step(action, rng);
            steps += 1;
        }
        steps
    }

    #[test]
    fn join_order_only_matches_rejoin_step_count() {
        let (db, queries) = fixtures(false);
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env = FullPlanEnv::new(
            ctx,
            &queries,
            4,
            QueryOrder::Cycle,
            RewardMode::RelativeToExpert,
            StageSet::join_order_only(),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let steps = run_random_episode(&mut env, &mut rng);
        assert_eq!(steps, 2); // n − 1 pair actions only
        let outcome = env.last_outcome().expect("finished");
        outcome.plan.validate(&queries[0]).unwrap();
    }

    #[test]
    fn full_stage_set_lengthens_episodes() {
        let (db, queries) = fixtures(true);
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env = FullPlanEnv::new(
            ctx,
            &queries,
            4,
            QueryOrder::Cycle,
            RewardMode::RelativeToExpert,
            StageSet::full(),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let steps = run_random_episode(&mut env, &mut rng);
        // 3 access paths + 2 pairs + 2 join ops + 1 aggregate.
        assert_eq!(steps, 8);
        let outcome = env.last_outcome().expect("finished");
        outcome.plan.validate(&queries[0]).unwrap();
        assert!(matches!(outcome.plan.root, PlanNode::Aggregate { .. }));
    }

    #[test]
    fn random_full_episodes_always_produce_valid_plans() {
        let (db, queries) = fixtures(true);
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env = FullPlanEnv::new(
            ctx,
            &queries,
            4,
            QueryOrder::Cycle,
            RewardMode::InverseCost,
            StageSet::full(),
        );
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..25 {
            run_random_episode(&mut env, &mut rng);
            let outcome = env.last_outcome().expect("finished");
            outcome.plan.validate(&queries[0]).unwrap();
            assert!(outcome.agent_cost > 0.0);
        }
    }

    #[test]
    fn state_dim_includes_phase_and_rel_markers() {
        let (db, queries) = fixtures(false);
        let ctx = EnvContext::new(&db.db, &db.stats);
        let env = FullPlanEnv::new(
            ctx,
            &queries,
            4,
            QueryOrder::Cycle,
            RewardMode::InverseCost,
            StageSet::full(),
        );
        assert_eq!(env.state_dim(), env.featurizer().state_dim() + 4 + 4);
    }

    #[test]
    fn stage_growth_changes_episode_shape() {
        let (db, queries) = fixtures(false);
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env = FullPlanEnv::new(
            ctx,
            &queries,
            4,
            QueryOrder::Cycle,
            RewardMode::InverseCost,
            StageSet::join_order_only(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(run_random_episode(&mut env, &mut rng), 2);
        env.set_stages(StageSet::through_index());
        assert_eq!(run_random_episode(&mut env, &mut rng), 5); // +3 scans
        env.set_stages(StageSet::through_join_ops());
        assert_eq!(run_random_episode(&mut env, &mut rng), 7); // +2 algos
    }
}
