//! Parallel episode collection — the multi-worker training harness.
//!
//! Latency-grounded rewards make each episode expensive, which is the
//! paper's central obstacle to hands-free training (§5). Balsa and Neo
//! attack the same wall by collecting experience on many agents at
//! once; this module does the equivalent for our trainer: `N` worker
//! threads each own an environment clone over the *shared, read-only*
//! `Database`/`Catalog`/statistics, roll out episodes with a frozen
//! [`PolicySnapshot`] of the current policy, and stream
//! `(Episode, EpisodeOutcome)` pairs over a channel to the learner
//! thread, which applies policy updates synchronously (A2C-style
//! rounds) through the existing REINFORCE/PPO agents.
//!
//! # Determinism contract
//!
//! * `workers = 1` runs the exact legacy sequential loop
//!   ([`crate::trainer::train`]) on the caller's RNG — the resulting
//!   [`TrainingLog`] is bit-identical to calling `train` directly.
//! * `workers = N > 1` derives one seeded RNG stream per worker from
//!   the caller's RNG and assigns episode `i` to worker `i % N`. Each
//!   round collects exactly one episode per worker against the
//!   round-start snapshot; the learner buffers the round and applies
//!   observations in episode order, so thread scheduling cannot change
//!   the result: the same seed and the same worker count reproduce the
//!   same log, bit for bit. Different worker counts are *different
//!   (equally valid) runs* — the episode-to-stream assignment changes.
//! * Under [`QueryOrder::Cycle`] the workers emulate the global
//!   round-robin walk (episode `i` trains on query `i % len`), so the
//!   query schedule matches the sequential trainer at any worker
//!   count. `Shuffle` draws from each worker's own stream; `Fixed`
//!   behaves as in the sequential loop.

use crate::agent::ReJoinAgent;
use crate::env_join::{EpisodeOutcome, QueryOrder};
use crate::metrics::TrainingLog;
use crate::trainer::{record_from, train, OutcomeEnv, TrainerConfig};
use hfqo_rl::{Episode, PolicySnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::mpsc;
use std::sync::Arc;

/// One episode assignment handed to a worker: the query to train on,
/// when the learner drives the schedule (`Cycle` emulation); `None`
/// leaves the env's own order in charge. (The learner tracks global
/// episode indices itself — results come back on per-worker channels,
/// so they cannot be misattributed.)
struct EpisodeSpec {
    fixed_query: Option<usize>,
}

/// A round's worth of work for one worker: one episode with a frozen
/// policy.
struct Command {
    /// Frozen policy to act with.
    snapshot: Arc<PolicySnapshot>,
    /// The episode to collect this round.
    spec: EpisodeSpec,
}

/// A collected episode travelling back to the learner.
struct Collected {
    episode: Episode,
    outcome: EpisodeOutcome,
}

/// The multi-worker training harness. Construction is cheap; all the
/// machinery lives in [`train`](Self::train) /
/// [`train_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelTrainer {
    config: TrainerConfig,
}

impl ParallelTrainer {
    /// A trainer over `config` (worker count included).
    pub fn new(config: TrainerConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> TrainerConfig {
        self.config
    }

    /// Trains `agent` for `config.episodes` episodes, collecting on
    /// `config.workers` threads. `make_env(w)` builds worker `w`'s
    /// environment; every call must produce an environment over the
    /// same workload and reward configuration (clone the `EnvContext`,
    /// share the `Database`/stats borrows).
    pub fn train<E, F>(&self, make_env: F, agent: &mut ReJoinAgent, rng: &mut StdRng) -> TrainingLog
    where
        E: OutcomeEnv + Send,
        F: FnMut(usize) -> E,
    {
        train_parallel(make_env, agent, self.config, rng)
    }
}

/// Trains with `config.workers` episode-collection threads. See
/// [`ParallelTrainer`] and the module docs for the determinism
/// contract.
///
/// `make_env(w)` builds worker `w`'s environment over the shared
/// read-only world:
///
/// ```
/// use hfqo_opt::test_support::{chain_query, TestDb};
/// use hfqo_rejoin::{
///     train_parallel, EnvContext, Featurizer, JoinOrderEnv, PolicyKind, QueryOrder,
///     ReJoinAgent, RewardMode, TrainerConfig,
/// };
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let fixture = TestDb::chain(3, 150);
/// let queries = vec![chain_query(&fixture, 3)];
/// let make_env = |_worker: usize| {
///     let ctx = EnvContext::new(&fixture.db, &fixture.stats);
///     JoinOrderEnv::new(ctx, &queries, 3, QueryOrder::Cycle, RewardMode::LogRelative)
/// };
/// let featurizer = Featurizer::new(3);
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut agent = ReJoinAgent::new(
///     featurizer.state_dim(),
///     featurizer.action_dim(),
///     PolicyKind::default_reinforce(),
///     &mut rng,
/// );
/// let config = TrainerConfig::new(8).with_workers(2);
/// let log = train_parallel(make_env, &mut agent, config, &mut rng);
/// assert_eq!(log.len(), 8);
/// ```
pub fn train_parallel<E, F>(
    mut make_env: F,
    agent: &mut ReJoinAgent,
    config: TrainerConfig,
    rng: &mut StdRng,
) -> TrainingLog
where
    E: OutcomeEnv + Send,
    F: FnMut(usize) -> E,
{
    if config.workers <= 1 {
        // Exact legacy behavior: same env, same RNG stream, same loop.
        let mut env = make_env(0);
        return train(&mut env, agent, config, rng);
    }
    // The learner applies updates with the configured NN path, when
    // the config selects one (per-row is the bit-identical
    // verification path); otherwise the agent's own setting stands.
    if let Some(path) = config.update_path {
        agent.set_update_path(path);
    }
    let workers = config.workers.min(config.episodes.max(1));
    // Per-worker seeded streams, derived from the caller's RNG so the
    // whole run is a function of the original seed.
    let worker_seeds: Vec<u64> = (0..workers).map(|_| rng.gen()).collect();
    let mut envs: Vec<E> = (0..workers).map(&mut make_env).collect();
    let order = envs[0].query_order();
    let workload_len = envs[0].workload_len();
    let cycle = matches!(order, QueryOrder::Cycle);

    let mut log = TrainingLog::new();
    std::thread::scope(|scope| {
        // One result channel *per worker*: a worker that dies (panics)
        // drops its own sender, so the learner's recv turns into an
        // immediate error instead of a permanent hang — the panic then
        // propagates when the scope joins.
        let mut cmd_txs: Vec<mpsc::Sender<Command>> = Vec::with_capacity(workers);
        let mut result_rxs: Vec<mpsc::Receiver<Collected>> = Vec::with_capacity(workers);
        for (w, mut env) in envs.drain(..).enumerate() {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Command>();
            let (result_tx, result_rx) = mpsc::channel::<Collected>();
            cmd_txs.push(cmd_tx);
            result_rxs.push(result_rx);
            let seed = worker_seeds[w];
            scope.spawn(move || {
                let mut wrng = StdRng::seed_from_u64(seed);
                while let Ok(Command { snapshot, spec }) = cmd_rx.recv() {
                    if let Some(q) = spec.fixed_query {
                        env.set_query_order(QueryOrder::Fixed(q));
                    }
                    let episode = snapshot.run_episode(&mut env, &mut wrng, false);
                    let outcome = env
                        .episode_outcome()
                        .cloned()
                        .expect("episode just finished");
                    // The learner hanging up mid-run only happens on
                    // its panic; don't double-panic from the worker.
                    if result_tx.send(Collected { episode, outcome }).is_err() {
                        return;
                    }
                }
            });
        }

        let mut next = 0usize;
        while next < config.episodes {
            let round_end = (next + workers).min(config.episodes);
            let snapshot = Arc::new(agent.snapshot());
            for index in next..round_end {
                let spec = EpisodeSpec {
                    fixed_query: cycle.then(|| index % workload_len),
                };
                cmd_txs[index - next]
                    .send(Command {
                        snapshot: Arc::clone(&snapshot),
                        spec,
                    })
                    .expect("worker thread alive");
            }
            // Barrier: wait for the whole round, receiving in worker
            // (= episode) order so thread scheduling cannot reorder
            // learning.
            for index in next..round_end {
                let c = result_rxs[index - next].recv().unwrap_or_else(|_| {
                    panic!("worker {} died collecting episode {index}", index - next)
                });
                log.push(record_from(&c.outcome, index));
                agent.observe(c.episode);
            }
            next = round_end;
        }
        drop(cmd_txs); // hang up: workers exit their recv loop
    });
    agent.flush();
    log
}

// Worker environments cross thread boundaries; these hold structurally
// because the world they borrow is read-only (`Database`, `Catalog`,
// `StatsCatalog` are `Sync`) and everything else is owned. The
// assertions break the build if interior mutability ever sneaks into
// the shared state.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<crate::env_join::JoinOrderEnv<'static>>();
    assert_send::<crate::env_full::FullPlanEnv<'static>>();
    assert_sync::<hfqo_storage::Database>();
    assert_sync::<hfqo_stats::StatsCatalog>();
    assert_send::<EpisodeOutcome>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::PolicyKind;
    use crate::env_join::{EnvContext, JoinOrderEnv};
    use crate::reward::RewardMode;
    use hfqo_opt::test_support::{chain_query, TestDb};
    use hfqo_query::QueryGraph;
    use hfqo_rl::{Environment, ReinforceConfig};

    fn fixtures() -> (TestDb, Vec<QueryGraph>) {
        let db = TestDb::chain(4, 300);
        let queries = vec![
            chain_query(&db, 4).with_label("a"),
            chain_query(&db, 3).with_label("b"),
        ];
        (db, queries)
    }

    fn small_agent(env: &JoinOrderEnv<'_>, rng: &mut StdRng) -> ReJoinAgent {
        ReJoinAgent::new(
            env.state_dim(),
            env.action_dim(),
            PolicyKind::Reinforce(ReinforceConfig {
                hidden: vec![16],
                batch_episodes: 4,
                ..Default::default()
            }),
            rng,
        )
    }

    fn run(workers: usize, seed: u64, episodes: usize) -> TrainingLog {
        let (db, queries) = fixtures();
        let make_env = |_w: usize| {
            let ctx = EnvContext::new(&db.db, &db.stats);
            JoinOrderEnv::new(ctx, &queries, 5, QueryOrder::Cycle, RewardMode::LogRelative)
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agent = small_agent(&make_env(0), &mut rng);
        let trainer = ParallelTrainer::new(TrainerConfig::new(episodes).with_workers(workers));
        trainer.train(make_env, &mut agent, &mut rng)
    }

    #[test]
    fn parallel_covers_all_episodes_in_order() {
        let log = run(3, 9, 10);
        assert_eq!(log.len(), 10);
        for (i, r) in log.records.iter().enumerate() {
            assert_eq!(r.episode, i);
            // Cycle emulation: episode i trains on query i % 2.
            assert_eq!(r.query_idx, i % 2);
            assert!(r.agent_cost > 0.0);
        }
    }

    #[test]
    fn same_seed_same_workers_reproduces() {
        let a = run(3, 11, 12);
        let b = run(3, 11, 12);
        assert_eq!(a, b);
    }

    #[test]
    fn workers_capped_by_episode_count() {
        // 8 workers, 3 episodes: must not deadlock waiting on idle
        // workers.
        let log = run(8, 13, 3);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn agent_sees_every_episode() {
        let (db, queries) = fixtures();
        let make_env = |_w: usize| {
            let ctx = EnvContext::new(&db.db, &db.stats);
            JoinOrderEnv::new(ctx, &queries, 5, QueryOrder::Cycle, RewardMode::LogRelative)
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut agent = small_agent(&make_env(0), &mut rng);
        let trainer = ParallelTrainer::new(TrainerConfig::new(20).with_workers(4));
        let log = trainer.train(make_env, &mut agent, &mut rng);
        assert_eq!(log.len(), 20);
        assert_eq!(agent.episodes_seen(), 20);
    }
}
