//! Learning from demonstration (§5.1).
//!
//! The five-step recipe from the paper, implemented over the join-order
//! environment:
//!
//! 1. run the workload through the traditional optimizer and record each
//!    query's episode history `H_q` (forest-merge actions);
//! 2. execute (here: simulate) the expert plans and record latencies
//!    `L_q`;
//! 3. train a **reward prediction function** to map `(state, action)` to
//!    the eventual latency;
//! 4. plan queries by running every valid action through the predictor
//!    and taking the minimum (with ε-exploration), fine-tuning the
//!    predictor on the observed latencies;
//! 5. if performance *slips* past a threshold, partially re-train on the
//!    stored expert samples.
//!
//! Latencies are learned in `ln(1 + ms)` space: plan latencies span
//! orders of magnitude and the paper's own §5.2 discussion shows why raw
//! ranges destabilise learning; the log transform is monotone, so
//! argmin-selection is unaffected.
//!
//! Every network touch here rides the batched NN path: pretraining and
//! fine-tuning hand whole minibatches to
//! [`RewardModel::train_batch`] (one B×F forward/backward per
//! minibatch), and plan-time argmin selection scores all valid actions
//! of a state in a single forward via `RewardModel::predict_all` —
//! there is no per-row network loop left in this pipeline.

use crate::env_join::{JoinOrderEnv, QueryOrder};
use crate::metrics::{EpisodeRecord, MovingAverage, TrainingLog};
use hfqo_opt::{expert_actions, TraditionalOptimizer};
use hfqo_rl::{Environment, ReplayBuffer, RewardModel, RewardModelConfig};
use rand::rngs::StdRng;

/// One `(state, action, ln-latency)` demonstration sample.
type Sample = (Vec<f32>, usize, f32);

/// Configuration for learning from demonstration.
#[derive(Debug, Clone)]
pub struct DemonstrationConfig {
    /// Minibatch passes over the expert samples in Phase 1.
    pub pretrain_steps: usize,
    /// Minibatch size for both phases. Each minibatch is one fused
    /// forward/backward through the reward network, so larger batches
    /// amortise the per-update overhead (see `benches/nn.rs`).
    pub batch_size: usize,
    /// Fine-tuning episodes (Phase 2).
    pub finetune_episodes: usize,
    /// Exploration probability during fine-tuning.
    pub epsilon: f32,
    /// Window for the slip detector's moving averages.
    pub slip_window: usize,
    /// Re-train when the agent's average latency exceeds
    /// `slip_factor ×` the expert average over the same window.
    pub slip_factor: f64,
    /// Expert-only minibatches applied on a slip.
    pub retrain_steps: usize,
    /// Reward-model network shape.
    pub model: RewardModelConfig,
}

impl Default for DemonstrationConfig {
    fn default() -> Self {
        Self {
            pretrain_steps: 400,
            batch_size: 32,
            finetune_episodes: 300,
            epsilon: 0.05,
            slip_window: 25,
            slip_factor: 1.5,
            retrain_steps: 50,
            model: RewardModelConfig::default(),
        }
    }
}

/// Results of a learning-from-demonstration run.
#[derive(Debug)]
pub struct DemonstrationOutcome {
    /// Pretraining loss curve (one value per minibatch).
    pub pretrain_losses: Vec<f32>,
    /// Fine-tuning episode log.
    pub log: TrainingLog,
    /// Episodes at which slip re-training fired.
    pub retrain_events: Vec<usize>,
    /// Mean expert latency per query (the baseline the slip detector
    /// compares against).
    pub expert_latency_ms: Vec<f64>,
    /// Worst latency the agent ever caused during fine-tuning — the
    /// paper's headline claim is that this stays near the expert's range
    /// instead of the catastrophic latencies of tabula-rasa training.
    pub worst_latency_ms: f64,
}

/// Runs learning from demonstration on a join-order environment.
///
/// The environment's reward mode must be latency-based so fine-tuning
/// episodes carry latency observations (construct it with
/// [`RewardMode::InverseLatency`](crate::reward::RewardMode)).
pub fn learn_from_demonstration(
    env: &mut JoinOrderEnv<'_>,
    config: &DemonstrationConfig,
    rng: &mut StdRng,
) -> DemonstrationOutcome {
    assert!(
        env.reward_mode().needs_latency(),
        "learning from demonstration requires a latency-based reward mode"
    );
    let featurizer = env.featurizer();
    let n_queries = env.queries().len();

    // ── Steps 1–2: expert histories + latencies ─────────────────────────
    let mut expert_buffer: ReplayBuffer<Sample> = ReplayBuffer::new(100_000);
    let mut expert_latency_ms = Vec::with_capacity(n_queries);
    {
        let optimizer = TraditionalOptimizer::new(env.context().catalog(), env.context().stats);
        let mut features = Vec::new();
        let mut mask = Vec::new();
        for idx in 0..n_queries {
            let episode = expert_actions(&optimizer, &env.queries()[idx])
                .expect("workload queries are plannable");
            let (latency, _) = env.observe_latency(idx, &episode.plan, rng);
            expert_latency_ms.push(latency);
            let target = (1.0 + latency).ln() as f32;
            env.set_order(QueryOrder::Fixed(idx));
            env.reset(rng);
            for &(x, y) in &episode.actions {
                env.state_features(&mut features);
                env.action_mask(&mut mask);
                let action = featurizer.encode_pair(x, y);
                debug_assert!(mask[action], "expert action must be valid");
                expert_buffer.push((features.clone(), action, target));
                env.step(action, rng);
            }
        }
    }

    // ── Step 3: train the reward prediction function ────────────────────
    let mut model = RewardModel::new(env.state_dim(), env.action_dim(), config.model.clone(), rng);
    let mut pretrain_losses = Vec::with_capacity(config.pretrain_steps);
    for _ in 0..config.pretrain_steps {
        let batch = expert_buffer.sample(config.batch_size, rng);
        pretrain_losses.push(model.train_batch(&batch));
    }

    // ── Steps 4–5: fine-tune on own episodes, re-train on slips ────────
    env.set_order(QueryOrder::Cycle);
    let mut log = TrainingLog::new();
    let mut retrain_events = Vec::new();
    let mut agent_ma = MovingAverage::new(config.slip_window);
    let mut expert_ma = MovingAverage::new(config.slip_window);
    let mut worst_latency: f64 = 0.0;
    let mut features = Vec::new();
    let mut mask = Vec::new();
    for episode in 0..config.finetune_episodes {
        env.reset(rng);
        let mut steps: Vec<(Vec<f32>, usize)> = Vec::new();
        while !env.is_terminal() {
            env.state_features(&mut features);
            env.action_mask(&mut mask);
            let action = model.select_min(&features, &mask, config.epsilon, rng);
            steps.push((features.clone(), action));
            env.step(action, rng);
        }
        let outcome = env.last_outcome().expect("episode finished").clone();
        let latency = outcome
            .latency_ms
            .expect("latency-based reward mode records latency");
        worst_latency = worst_latency.max(latency);
        let target = (1.0 + latency).ln() as f32;
        // Fine-tune on this episode plus replayed expert samples (the
        // mix keeps the expert's coverage from washing out).
        let mut batch: Vec<Sample> = steps.into_iter().map(|(f, a)| (f, a, target)).collect();
        batch.extend(expert_buffer.sample(config.batch_size / 2, rng));
        model.train_batch(&batch);
        // Slip detection (step 5).
        agent_ma.push(latency);
        expert_ma.push(expert_latency_ms[outcome.query_idx]);
        if let (Some(agent_avg), Some(expert_avg)) = (agent_ma.value(), expert_ma.value()) {
            if agent_ma.len() >= config.slip_window && agent_avg > config.slip_factor * expert_avg {
                for _ in 0..config.retrain_steps {
                    let batch = expert_buffer.sample(config.batch_size, rng);
                    model.train_batch(&batch);
                }
                retrain_events.push(episode);
                // Restart the window so one slip does not fire repeatedly.
                agent_ma = MovingAverage::new(config.slip_window);
                expert_ma = MovingAverage::new(config.slip_window);
            }
        }
        log.push(EpisodeRecord {
            episode,
            query_idx: outcome.query_idx,
            label: outcome.label.clone(),
            agent_cost: outcome.agent_cost,
            expert_cost: outcome.expert_cost,
            reward: outcome.reward,
            latency_ms: Some(latency),
        });
    }
    DemonstrationOutcome {
        pretrain_losses,
        log,
        retrain_events,
        expert_latency_ms,
        worst_latency_ms: worst_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env_join::EnvContext;
    use crate::reward::RewardMode;
    use hfqo_opt::test_support::{chain_query, TestDb};
    use rand::SeedableRng;

    fn quick_config() -> DemonstrationConfig {
        DemonstrationConfig {
            pretrain_steps: 60,
            batch_size: 16,
            finetune_episodes: 30,
            slip_window: 10,
            retrain_steps: 5,
            model: RewardModelConfig {
                hidden: vec![32],
                lr: 3e-3,
                grad_clip: 5.0,
            },
            ..Default::default()
        }
    }

    #[test]
    fn lfd_runs_and_stays_reasonable() {
        let db = TestDb::chain(4, 300);
        let queries = vec![chain_query(&db, 4), chain_query(&db, 3)];
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env = JoinOrderEnv::new(
            ctx,
            &queries,
            5,
            QueryOrder::Cycle,
            RewardMode::InverseLatency,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = learn_from_demonstration(&mut env, &quick_config(), &mut rng);
        assert_eq!(outcome.log.len(), 30);
        assert_eq!(outcome.expert_latency_ms.len(), 2);
        assert!(outcome.worst_latency_ms > 0.0);
        // Pretraining must reduce the prediction loss.
        let first = outcome.pretrain_losses.first().copied().expect("non-empty");
        let last = outcome.pretrain_losses.last().copied().expect("non-empty");
        assert!(last < first, "pretrain loss {first} → {last}");
        // Demonstration-guided planning on an easy chain must stay clear
        // of *catastrophic* latencies: a budget-capped runaway plan sits
        // orders of magnitude above the expert, while exploration under a
        // slightly-off predictor can cost a couple of orders at worst.
        let expert_worst = outcome
            .expert_latency_ms
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        assert!(
            outcome.worst_latency_ms < 1000.0 * expert_worst,
            "worst {} vs expert {}",
            outcome.worst_latency_ms,
            expert_worst
        );
        // And the *typical* episode should track the expert closely by
        // the end of fine-tuning.
        let tail: Vec<f64> = outcome
            .log
            .records
            .iter()
            .rev()
            .take(10)
            .filter_map(|r| r.latency_ms)
            .collect();
        let tail_mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
        let expert_mean = outcome.expert_latency_ms.iter().sum::<f64>()
            / outcome.expert_latency_ms.len().max(1) as f64;
        assert!(
            tail_mean < 20.0 * expert_mean,
            "tail mean {tail_mean} vs expert mean {expert_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "latency-based reward mode")]
    fn cost_reward_env_rejected() {
        let db = TestDb::chain(3, 100);
        let queries = vec![chain_query(&db, 3)];
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env =
            JoinOrderEnv::new(ctx, &queries, 4, QueryOrder::Cycle, RewardMode::InverseCost);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = learn_from_demonstration(&mut env, &quick_config(), &mut rng);
    }
}
