//! Reward signals.
//!
//! §3's ReJOIN reward is the reciprocal of the optimizer's cost model,
//! `1/M(t)`. §4 explains why raw latency is problematic (sparse,
//! non-linear, expensive for bad plans), and §5.2 proposes scaling
//! latency into the cost range. All of these are selectable here; the
//! expert-relative variant divides out per-query magnitude differences
//! (a variance-reduction refinement — the convergence *metric* stays
//! cost-relative-to-expert either way, as in Figure 3a).

use hfqo_cost::RewardScaler;

/// How terminal rewards are computed from a finished plan.
#[derive(Debug, Clone)]
pub enum RewardMode {
    /// `1 / M(t)` — the paper's ReJOIN reward.
    InverseCost,
    /// `expert_cost / agent_cost` — normalised so 1.0 means
    /// expert-equivalent; queries of different sizes contribute rewards
    /// on the same scale.
    RelativeToExpert,
    /// `1 / latency_ms` — the naive latency reward of §4 (requires the
    /// environment to simulate/execute every final plan).
    InverseLatency,
    /// `1 / scaler(latency_ms)` — §5.2's bootstrapped Phase-2 reward:
    /// latency mapped into the Phase-1 cost range before inversion.
    ScaledLatency(RewardScaler),
    /// `ln(expert_cost / agent_cost)`, clamped to ±20. Plan costs span
    /// many orders of magnitude (a cross join can cost 10⁶× the expert
    /// plan), so the reciprocal rewards above compress every bad plan
    /// toward zero and the policy gradient cannot tell "bad" from
    /// "catastrophic". The log form keeps the ordering of the paper's
    /// reward while giving the gradient a usable scale; the headline
    /// training runs use it (the convergence *metric* remains plan cost
    /// relative to expert either way).
    LogRelative,
    /// `−ln M(t)` — the log-domain analogue of [`InverseCost`]
    /// (monotone-equivalent: `ln(1/x) = −ln x`). Phase 1 of
    /// bootstrapping trains on this.
    ///
    /// [`InverseCost`]: RewardMode::InverseCost
    NegLogCost,
    /// `−ln latency_ms` — the log-domain analogue of
    /// [`InverseLatency`]; the *unscaled* Phase-2 ablation.
    ///
    /// [`InverseLatency`]: RewardMode::InverseLatency
    NegLogLatency,
    /// `−ln scaler(latency_ms)` — Phase 2 with the paper's `r_l`
    /// scaling, in the log domain, so the reward range continues Phase
    /// 1's `−ln cost` range seamlessly.
    NegLogScaledLatency(RewardScaler),
}

impl RewardMode {
    /// Whether this mode needs a latency observation for every episode.
    pub fn needs_latency(&self) -> bool {
        matches!(
            self,
            RewardMode::InverseLatency
                | RewardMode::ScaledLatency(_)
                | RewardMode::NegLogLatency
                | RewardMode::NegLogScaledLatency(_)
        )
    }

    /// Computes the terminal reward.
    ///
    /// `agent_cost` is `M(t)` for the finished plan, `expert_cost` the
    /// expert's cost for the same query, `latency_ms` the (simulated)
    /// execution latency when available.
    pub fn terminal_reward(
        &self,
        agent_cost: f64,
        expert_cost: f64,
        latency_ms: Option<f64>,
    ) -> f32 {
        match self {
            RewardMode::InverseCost => (1.0 / agent_cost.max(1e-9)) as f32,
            RewardMode::RelativeToExpert => (expert_cost.max(1e-9) / agent_cost.max(1e-9)) as f32,
            RewardMode::InverseLatency => {
                let l = latency_ms.expect("latency required by InverseLatency");
                (1.0 / l.max(1e-6)) as f32
            }
            RewardMode::ScaledLatency(scaler) => {
                let l = latency_ms.expect("latency required by ScaledLatency");
                (1.0 / scaler.scale(l).max(1e-6)) as f32
            }
            RewardMode::LogRelative => {
                let ratio = expert_cost.max(1e-9) / agent_cost.max(1e-9);
                (ratio.ln().clamp(-20.0, 20.0)) as f32
            }
            RewardMode::NegLogCost => (-(agent_cost.max(1e-9).ln())) as f32,
            RewardMode::NegLogLatency => {
                let l = latency_ms.expect("latency required by NegLogLatency");
                (-(l.max(1e-6).ln())) as f32
            }
            RewardMode::NegLogScaledLatency(scaler) => {
                let l = latency_ms.expect("latency required by NegLogScaledLatency");
                (-(scaler.scale(l).max(1e-6).ln())) as f32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_cost_prefers_cheap_plans() {
        let m = RewardMode::InverseCost;
        assert!(m.terminal_reward(10.0, 100.0, None) > m.terminal_reward(20.0, 100.0, None));
        assert!(!m.needs_latency());
    }

    #[test]
    fn relative_reward_is_one_at_expert_parity() {
        let m = RewardMode::RelativeToExpert;
        let r = m.terminal_reward(50.0, 50.0, None);
        assert!((r - 1.0).abs() < 1e-6);
        assert!(m.terminal_reward(25.0, 50.0, None) > 1.5);
    }

    #[test]
    fn latency_modes_require_latency() {
        assert!(RewardMode::InverseLatency.needs_latency());
        let r = RewardMode::InverseLatency.terminal_reward(1.0, 1.0, Some(20.0));
        assert!((r - 0.05).abs() < 1e-6);
    }

    #[test]
    fn scaled_latency_uses_the_scaler() {
        let mut scaler = RewardScaler::new();
        scaler.observe(10.0, 100.0);
        scaler.observe(50.0, 200.0);
        let m = RewardMode::ScaledLatency(scaler);
        // 100 ms maps to cost 10 → reward 0.1.
        let r = m.terminal_reward(1.0, 1.0, Some(100.0));
        assert!((r - 0.1).abs() < 1e-6);
        // 200 ms maps to cost 50 → reward 0.02.
        let r = m.terminal_reward(1.0, 1.0, Some(200.0));
        assert!((r - 0.02).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "latency required")]
    fn missing_latency_panics() {
        RewardMode::InverseLatency.terminal_reward(1.0, 1.0, None);
    }

    #[test]
    fn log_relative_discriminates_bad_from_catastrophic() {
        let m = RewardMode::LogRelative;
        let bad = m.terminal_reward(1e4, 1e2, None); // 100× expert
        let awful = m.terminal_reward(1e8, 1e2, None); // 10⁶× expert
        assert!(bad > awful, "bad {bad} vs awful {awful}");
        // Reciprocal rewards squash both to ~0 — the motivation for the
        // log form.
        let r = RewardMode::RelativeToExpert;
        let rb = r.terminal_reward(1e4, 1e2, None);
        let ra = r.terminal_reward(1e8, 1e2, None);
        assert!((rb - ra).abs() < 0.011);
        // Parity gives zero, better-than-expert positive.
        assert_eq!(m.terminal_reward(50.0, 50.0, None), 0.0);
        assert!(m.terminal_reward(25.0, 50.0, None) > 0.0);
    }

    #[test]
    fn neglog_modes_continue_each_other() {
        // Phase 1 on −ln(cost); a perfectly-fitted scaler maps latency
        // back into the cost range, so Phase 2 rewards land in the same
        // interval.
        let mut scaler = RewardScaler::new();
        scaler.observe(100.0, 10.0);
        scaler.observe(10_000.0, 1000.0);
        let p1 = RewardMode::NegLogCost.terminal_reward(100.0, 1.0, None);
        let p2 = RewardMode::NegLogScaledLatency(scaler).terminal_reward(1.0, 1.0, Some(10.0));
        assert!((p1 - p2).abs() < 1e-3, "p1 {p1} vs p2 {p2}");
        // Raw-latency rewards live in a different range entirely.
        let raw = RewardMode::NegLogLatency.terminal_reward(1.0, 1.0, Some(10.0));
        assert!((raw - p1).abs() > 1.0);
        assert!(RewardMode::NegLogLatency.needs_latency());
        assert!(!RewardMode::NegLogCost.needs_latency());
    }
}
