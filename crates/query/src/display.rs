//! EXPLAIN-style plan printing.

use crate::graph::QueryGraph;
use crate::physical::{AccessPath, PlanNode};
use std::fmt::Write as _;

/// Renders a plan as an indented EXPLAIN-style tree.
pub fn explain(node: &PlanNode, graph: &QueryGraph) -> String {
    let mut out = String::new();
    write_node(node, graph, 0, &mut out);
    out
}

fn write_node(node: &PlanNode, graph: &QueryGraph, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    match node {
        PlanNode::Scan { rel, path } => {
            let alias = &graph.relation(*rel).alias;
            match path {
                AccessPath::SeqScan => {
                    let _ = writeln!(out, "SeqScan on {alias}");
                }
                AccessPath::IndexScan {
                    index,
                    driving_selection,
                } => {
                    let sel = &graph.selections()[*driving_selection];
                    let _ = writeln!(out, "IndexScan on {alias} using {index} ({sel})");
                }
            }
        }
        PlanNode::Join {
            algo,
            conds,
            left,
            right,
        } => {
            let cond_str = if conds.is_empty() {
                "cross".to_string()
            } else {
                conds
                    .iter()
                    .map(|&c| graph.joins()[c].to_string())
                    .collect::<Vec<_>>()
                    .join(" AND ")
            };
            let _ = writeln!(out, "{} ({cond_str})", algo.name());
            write_node(left, graph, depth + 1, out);
            write_node(right, graph, depth + 1, out);
        }
        PlanNode::Aggregate { algo, input } => {
            let aggs = graph
                .aggregates()
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "{} [{aggs}]", algo.name());
            write_node(input, graph, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RelId, Relation};
    use crate::physical::{AggAlgo, JoinAlgo};
    use crate::predicate::{AggExpr, BoundColumn, CompareOp, JoinEdge};
    use hfqo_catalog::{ColumnId, TableId};
    use hfqo_sql::AggFunc;

    #[test]
    fn explain_renders_tree() {
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: TableId(0),
                    alias: "t".into(),
                },
                Relation {
                    table: TableId(1),
                    alias: "ci".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(1)),
            }],
            vec![],
            vec![AggExpr {
                func: AggFunc::Count,
                column: None,
            }],
            vec![],
        );
        let plan = PlanNode::Aggregate {
            algo: AggAlgo::Hash,
            input: Box::new(PlanNode::Join {
                algo: JoinAlgo::Hash,
                conds: vec![0],
                left: Box::new(PlanNode::Scan {
                    rel: RelId(0),
                    path: AccessPath::SeqScan,
                }),
                right: Box::new(PlanNode::Scan {
                    rel: RelId(1),
                    path: AccessPath::SeqScan,
                }),
            }),
        };
        let text = explain(&plan, &graph);
        assert!(text.contains("HashAggregate [COUNT(*)]"));
        assert!(text.contains("HashJoin (r0.c0 = r1.c1)"));
        assert!(text.contains("  SeqScan on t"));
        assert!(text.contains("    SeqScan on ci") || text.contains("  SeqScan on ci"));
    }
}
