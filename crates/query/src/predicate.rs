//! Bound predicates: selections, join edges, aggregates.

use crate::graph::RelId;
use hfqo_catalog::ColumnId;
pub use hfqo_sql::ast::AggFunc;
pub use hfqo_sql::CompareOp;
use std::fmt;

/// A literal in a bound predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
}

impl Lit {
    /// Numeric proxy consistent with the storage layer's
    /// `Value::numeric_proxy` — used by selectivity estimation.
    pub fn numeric_proxy(&self) -> f64 {
        match self {
            Lit::Int(v) => *v as f64,
            Lit::Float(v) => *v,
            Lit::Str(s) => {
                let mut acc = 0.0f64;
                let mut scale = 1.0f64;
                for &b in s.as_bytes().iter().take(6) {
                    scale /= 256.0;
                    acc += (b as f64) * scale;
                }
                acc
            }
        }
    }
}

impl From<hfqo_sql::Literal> for Lit {
    fn from(l: hfqo_sql::Literal) -> Self {
        match l {
            hfqo_sql::Literal::Int(v) => Lit::Int(v),
            hfqo_sql::Literal::Float(v) => Lit::Float(v),
            hfqo_sql::Literal::Str(s) => Lit::Str(s),
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(v) => write!(f, "{v}"),
            Lit::Float(v) => write!(f, "{v}"),
            Lit::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// A column of a *query relation* (not a catalog table): the same catalog
/// table may appear several times in one query under different aliases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoundColumn {
    /// Relation position in the FROM clause.
    pub rel: RelId,
    /// Column position within the relation's table.
    pub column: ColumnId,
}

impl BoundColumn {
    /// Creates a bound column.
    pub fn new(rel: RelId, column: ColumnId) -> Self {
        Self { rel, column }
    }
}

impl fmt::Display for BoundColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}.c{}", self.rel.0, self.column.0)
    }
}

/// A selection predicate: `column <op> literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The filtered column.
    pub column: BoundColumn,
    /// Comparison operator.
    pub op: CompareOp,
    /// Comparison literal.
    pub value: Lit,
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.column, self.op.sql(), self.value)
    }
}

/// A join predicate between two relations: `left <op> right`.
///
/// Stored with `left.rel < right.rel` (normalised by the binder) so edge
/// identity is canonical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinEdge {
    /// Column on the lower-numbered relation.
    pub left: BoundColumn,
    /// Comparison operator (as written for `left <op> right`).
    pub op: CompareOp,
    /// Column on the higher-numbered relation.
    pub right: BoundColumn,
}

impl fmt::Display for JoinEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op.sql(), self.right)
    }
}

/// An aggregate output expression.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// Aggregated column; `None` only for `COUNT(*)`.
    pub column: Option<BoundColumn>,
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.column {
            Some(c) => write!(f, "{}({c})", self.func.sql()),
            None => write!(f, "{}(*)", self.func.sql()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_proxy_matches_kinds() {
        assert_eq!(Lit::Int(5).numeric_proxy(), 5.0);
        assert_eq!(Lit::Float(2.5).numeric_proxy(), 2.5);
        assert!(Lit::Str("a".into()).numeric_proxy() < Lit::Str("b".into()).numeric_proxy());
    }

    #[test]
    fn lit_from_sql() {
        assert_eq!(Lit::from(hfqo_sql::Literal::Int(3)), Lit::Int(3));
        assert_eq!(
            Lit::from(hfqo_sql::Literal::Str("x".into())),
            Lit::Str("x".into())
        );
    }

    #[test]
    fn displays() {
        let c = BoundColumn::new(RelId(1), ColumnId(2));
        assert_eq!(c.to_string(), "r1.c2");
        let s = Selection {
            column: c,
            op: CompareOp::Le,
            value: Lit::Int(10),
        };
        assert_eq!(s.to_string(), "r1.c2 <= 10");
        let e = JoinEdge {
            left: BoundColumn::new(RelId(0), ColumnId(0)),
            op: CompareOp::Eq,
            right: c,
        };
        assert_eq!(e.to_string(), "r0.c0 = r1.c2");
        let a = AggExpr {
            func: AggFunc::Count,
            column: None,
        };
        assert_eq!(a.to_string(), "COUNT(*)");
    }
}
