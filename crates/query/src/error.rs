//! Query-layer errors.

use hfqo_catalog::CatalogError;
use std::fmt;

/// Errors raised while binding or validating queries and plans.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// An alias in the FROM clause appears twice.
    DuplicateAlias(String),
    /// A predicate references an alias not in the FROM clause.
    UnknownAlias(String),
    /// Catalog lookup failure (unknown table/column).
    Catalog(CatalogError),
    /// A comparison mixes incompatible types.
    TypeMismatch(String),
    /// More relations than [`RelSet`](crate::RelSet) supports (64).
    TooManyRelations(usize),
    /// A plan was structurally invalid (wrong relation coverage, bad
    /// predicate index, etc.).
    InvalidPlan(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateAlias(a) => write!(f, "duplicate alias `{a}` in FROM clause"),
            Self::UnknownAlias(a) => write!(f, "unknown alias `{a}`"),
            Self::Catalog(e) => write!(f, "{e}"),
            Self::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
            Self::TooManyRelations(n) => {
                write!(f, "query has {n} relations; the engine supports at most 64")
            }
            Self::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Catalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for QueryError {
    fn from(e: CatalogError) -> Self {
        Self::Catalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(QueryError::DuplicateAlias("t".into())
            .to_string()
            .contains("duplicate alias"));
        assert!(QueryError::TooManyRelations(70).to_string().contains("70"));
    }
}
