//! Physical plans.
//!
//! A [`PhysicalPlan`] pairs a [`QueryGraph`] reference shape (predicates are
//! referenced *by index* into the graph) with a tree of physical operator
//! choices. Both the cost model and the executor interpret a plan only
//! together with its graph.

use crate::error::QueryError;
use crate::graph::{QueryGraph, RelId, RelSet};
use crate::logical::JoinTree;
use hfqo_catalog::IndexId;

/// How a base relation is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Full sequential scan; all selections applied as filters.
    SeqScan,
    /// Index scan driven by the selection predicate at
    /// `driving_selection` (an index into the graph's selection list);
    /// remaining selections applied as residual filters.
    IndexScan {
        /// Which catalog index to probe.
        index: IndexId,
        /// Index into `QueryGraph::selections` of the driving predicate.
        driving_selection: usize,
    },
}

/// Join algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgo {
    /// Tuple-at-a-time nested loops; the only algorithm that can evaluate
    /// non-equality join predicates (and cross joins).
    NestedLoop,
    /// Build a hash table on the right input, probe with the left.
    Hash,
    /// Sort both inputs on the join key and merge. Equality joins only.
    Merge,
}

impl JoinAlgo {
    /// All algorithms, in the order the full-plan RL action space uses.
    pub const ALL: [JoinAlgo; 3] = [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::Merge];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            JoinAlgo::NestedLoop => "NestedLoopJoin",
            JoinAlgo::Hash => "HashJoin",
            JoinAlgo::Merge => "MergeJoin",
        }
    }
}

/// Aggregation algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggAlgo {
    /// Hash aggregation.
    Hash,
    /// Sort-based aggregation.
    Sort,
}

impl AggAlgo {
    /// All algorithms, in the order the full-plan RL action space uses.
    pub const ALL: [AggAlgo; 2] = [AggAlgo::Hash, AggAlgo::Sort];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AggAlgo::Hash => "HashAggregate",
            AggAlgo::Sort => "SortAggregate",
        }
    }
}

/// A node of a physical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Read one base relation.
    Scan {
        /// Which query relation.
        rel: RelId,
        /// How it is read.
        path: AccessPath,
    },
    /// Join two subplans.
    Join {
        /// Algorithm.
        algo: JoinAlgo,
        /// Indices into `QueryGraph::joins` applied at this node.
        conds: Vec<usize>,
        /// Left input (probe side for hash joins).
        left: Box<PlanNode>,
        /// Right input (build side for hash joins).
        right: Box<PlanNode>,
    },
    /// Aggregate the input (terminal node when the query has aggregates).
    Aggregate {
        /// Algorithm.
        algo: AggAlgo,
        /// Input.
        input: Box<PlanNode>,
    },
}

impl PlanNode {
    /// The set of relations this subplan covers.
    pub fn rel_set(&self) -> RelSet {
        match self {
            PlanNode::Scan { rel, .. } => RelSet::single(*rel),
            PlanNode::Join { left, right, .. } => left.rel_set().union(right.rel_set()),
            PlanNode::Aggregate { input, .. } => input.rel_set(),
        }
    }

    /// Number of join nodes in the subplan.
    pub fn join_count(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 0,
            PlanNode::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
            PlanNode::Aggregate { input, .. } => input.join_count(),
        }
    }

    /// The logical join tree skeleton of this plan (aggregates stripped).
    pub fn join_tree(&self) -> JoinTree {
        match self {
            PlanNode::Scan { rel, .. } => JoinTree::leaf(*rel),
            PlanNode::Join { left, right, .. } => {
                JoinTree::join(left.join_tree(), right.join_tree())
            }
            PlanNode::Aggregate { input, .. } => input.join_tree(),
        }
    }
}

/// A complete physical plan for a query graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// Root node.
    pub root: PlanNode,
}

impl PhysicalPlan {
    /// Wraps a root node.
    pub fn new(root: PlanNode) -> Self {
        Self { root }
    }

    /// Validates the plan against its graph:
    /// * covers every relation exactly once,
    /// * join/selection indices are in range,
    /// * every join condition connects the node's two inputs,
    /// * hash/merge joins have at least one equality condition,
    /// * an aggregate node appears only at the root.
    pub fn validate(&self, graph: &QueryGraph) -> Result<(), QueryError> {
        let mut seen = RelSet::EMPTY;
        Self::validate_node(&self.root, graph, &mut seen, true)?;
        if seen != graph.all_rels() {
            return Err(QueryError::InvalidPlan(format!(
                "plan covers {seen} but the query has {}",
                graph.all_rels()
            )));
        }
        Ok(())
    }

    fn validate_node(
        node: &PlanNode,
        graph: &QueryGraph,
        seen: &mut RelSet,
        is_root: bool,
    ) -> Result<(), QueryError> {
        match node {
            PlanNode::Scan { rel, path } => {
                if rel.index() >= graph.relation_count() {
                    return Err(QueryError::InvalidPlan(format!(
                        "scan of unknown relation r{}",
                        rel.0
                    )));
                }
                if seen.contains(*rel) {
                    return Err(QueryError::InvalidPlan(format!(
                        "relation r{} scanned twice",
                        rel.0
                    )));
                }
                seen.insert(*rel);
                if let AccessPath::IndexScan {
                    driving_selection, ..
                } = path
                {
                    let sel = graph.selections().get(*driving_selection).ok_or_else(|| {
                        QueryError::InvalidPlan(format!(
                            "driving selection #{driving_selection} out of range"
                        ))
                    })?;
                    if sel.column.rel != *rel {
                        return Err(QueryError::InvalidPlan(format!(
                            "driving selection #{driving_selection} is not on relation r{}",
                            rel.0
                        )));
                    }
                }
                Ok(())
            }
            PlanNode::Join {
                algo,
                conds,
                left,
                right,
            } => {
                Self::validate_node(left, graph, seen, false)?;
                Self::validate_node(right, graph, seen, false)?;
                let lset = left.rel_set();
                let rset = right.rel_set();
                for &c in conds {
                    let edge = graph.joins().get(c).ok_or_else(|| {
                        QueryError::InvalidPlan(format!("join condition #{c} out of range"))
                    })?;
                    let l = edge.left.rel;
                    let r = edge.right.rel;
                    let spans = (lset.contains(l) && rset.contains(r))
                        || (lset.contains(r) && rset.contains(l));
                    if !spans {
                        return Err(QueryError::InvalidPlan(format!(
                            "join condition #{c} does not connect {lset} with {rset}"
                        )));
                    }
                }
                if matches!(algo, JoinAlgo::Hash | JoinAlgo::Merge) {
                    let has_eq = conds
                        .iter()
                        .any(|&c| graph.joins()[c].op == hfqo_sql::CompareOp::Eq);
                    if !has_eq {
                        return Err(QueryError::InvalidPlan(format!(
                            "{} requires an equality condition",
                            algo.name()
                        )));
                    }
                }
                Ok(())
            }
            PlanNode::Aggregate { input, .. } => {
                if !is_root {
                    return Err(QueryError::InvalidPlan(
                        "aggregate below the plan root".into(),
                    ));
                }
                Self::validate_node(input, graph, seen, false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{BoundColumn, CompareOp, JoinEdge};
    use hfqo_catalog::{ColumnId, TableId};

    fn graph2() -> QueryGraph {
        QueryGraph::new(
            vec![
                crate::graph::Relation {
                    table: TableId(0),
                    alias: "a".into(),
                },
                crate::graph::Relation {
                    table: TableId(1),
                    alias: "b".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(0)),
            }],
            vec![],
            vec![],
            vec![],
        )
    }

    fn scan(rel: u32) -> PlanNode {
        PlanNode::Scan {
            rel: RelId(rel),
            path: AccessPath::SeqScan,
        }
    }

    #[test]
    fn valid_hash_join_plan() {
        let plan = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::Hash,
            conds: vec![0],
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
        });
        plan.validate(&graph2()).unwrap();
        assert_eq!(plan.root.rel_set(), RelSet::full(2));
        assert_eq!(plan.root.join_count(), 1);
    }

    #[test]
    fn missing_relation_rejected() {
        let plan = PhysicalPlan::new(scan(0));
        assert!(plan.validate(&graph2()).is_err());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let plan = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::NestedLoop,
            conds: vec![],
            left: Box::new(scan(0)),
            right: Box::new(scan(0)),
        });
        assert!(plan.validate(&graph2()).is_err());
    }

    #[test]
    fn hash_join_without_equality_rejected() {
        let plan = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::Hash,
            conds: vec![],
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
        });
        assert!(plan.validate(&graph2()).is_err());
        // Nested loop without conditions (cross join) is fine.
        let cross = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::NestedLoop,
            conds: vec![],
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
        });
        cross.validate(&graph2()).unwrap();
    }

    #[test]
    fn condition_must_span_inputs() {
        // Self-joining r0 with a condition to r1 that is absent.
        let plan = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::NestedLoop,
            conds: vec![9],
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
        });
        assert!(plan.validate(&graph2()).is_err());
    }

    #[test]
    fn aggregate_only_at_root() {
        let inner = PlanNode::Aggregate {
            algo: AggAlgo::Hash,
            input: Box::new(scan(0)),
        };
        let plan = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::NestedLoop,
            conds: vec![],
            left: Box::new(inner),
            right: Box::new(scan(1)),
        });
        assert!(plan.validate(&graph2()).is_err());

        let ok = PhysicalPlan::new(PlanNode::Aggregate {
            algo: AggAlgo::Sort,
            input: Box::new(PlanNode::Join {
                algo: JoinAlgo::Merge,
                conds: vec![0],
                left: Box::new(scan(0)),
                right: Box::new(scan(1)),
            }),
        });
        ok.validate(&graph2()).unwrap();
    }

    #[test]
    fn join_tree_skeleton() {
        let plan = PhysicalPlan::new(PlanNode::Aggregate {
            algo: AggAlgo::Hash,
            input: Box::new(PlanNode::Join {
                algo: JoinAlgo::Hash,
                conds: vec![0],
                left: Box::new(scan(0)),
                right: Box::new(scan(1)),
            }),
        });
        assert_eq!(plan.root.join_tree().compact(), "(0 ⋈ 1)");
    }
}
