//! The query graph and relation bitsets.

use crate::predicate::{AggExpr, BoundColumn, JoinEdge, Selection};
use hfqo_catalog::TableId;
use std::fmt;

/// Index of a relation within a query's FROM clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A set of query relations, packed into a 64-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct RelSet(pub u64);

impl RelSet {
    /// The empty set.
    pub const EMPTY: RelSet = RelSet(0);

    /// A singleton set.
    #[inline]
    pub fn single(rel: RelId) -> Self {
        RelSet(1u64 << rel.0)
    }

    /// The full set over `n` relations.
    #[inline]
    pub fn full(n: usize) -> Self {
        debug_assert!(n <= 64);
        if n == 64 {
            RelSet(u64::MAX)
        } else {
            RelSet((1u64 << n) - 1)
        }
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of relations in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `rel` is a member.
    #[inline]
    pub fn contains(self, rel: RelId) -> bool {
        self.0 & (1u64 << rel.0) != 0
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(self, other: RelSet) -> RelSet {
        RelSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub fn minus(self, other: RelSet) -> RelSet {
        RelSet(self.0 & !other.0)
    }

    /// Whether the sets share no relations.
    #[inline]
    pub fn is_disjoint(self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Whether `self` contains every relation of `other`.
    #[inline]
    pub fn is_superset(self, other: RelSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Adds a relation.
    #[inline]
    pub fn insert(&mut self, rel: RelId) {
        self.0 |= 1u64 << rel.0;
    }

    /// Iterates members in increasing order.
    pub fn iter(self) -> impl Iterator<Item = RelId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(RelId(i))
            }
        })
    }
}

impl fmt::Display for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", r.0)?;
        }
        write!(f, "}}")
    }
}

/// One relation of a query: a catalog table under an alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Backing catalog table.
    pub table: TableId,
    /// FROM-clause alias.
    pub alias: String,
}

/// A bound query: relations, join edges, selections, and the aggregate /
/// grouping shape of the output.
///
/// This is the single structure both the traditional optimizer and the RL
/// environments search over. Plans reference its predicates by index.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryGraph {
    relations: Vec<Relation>,
    joins: Vec<JoinEdge>,
    selections: Vec<Selection>,
    aggregates: Vec<AggExpr>,
    group_by: Vec<BoundColumn>,
    /// Optional label (e.g. the JOB-style query name "8c").
    pub label: Option<String>,
}

impl QueryGraph {
    /// Creates a graph. The binder is the usual constructor; tests and
    /// generators may build graphs directly.
    pub fn new(
        relations: Vec<Relation>,
        joins: Vec<JoinEdge>,
        selections: Vec<Selection>,
        aggregates: Vec<AggExpr>,
        group_by: Vec<BoundColumn>,
    ) -> Self {
        Self {
            relations,
            joins,
            selections,
            aggregates,
            group_by,
            label: None,
        }
    }

    /// Sets the display label (builder style).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// All relations in FROM order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// The relation with the given id.
    pub fn relation(&self, rel: RelId) -> &Relation {
        &self.relations[rel.index()]
    }

    /// All join edges.
    pub fn joins(&self) -> &[JoinEdge] {
        &self.joins
    }

    /// All selection predicates.
    pub fn selections(&self) -> &[Selection] {
        &self.selections
    }

    /// Aggregate outputs.
    pub fn aggregates(&self) -> &[AggExpr] {
        &self.aggregates
    }

    /// GROUP BY columns.
    pub fn group_by(&self) -> &[BoundColumn] {
        &self.group_by
    }

    /// The full relation set of the query.
    pub fn all_rels(&self) -> RelSet {
        RelSet::full(self.relations.len())
    }

    /// Indices of selection predicates on `rel`.
    pub fn selections_on(&self, rel: RelId) -> impl Iterator<Item = usize> + '_ {
        self.selections
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.column.rel == rel)
            .map(|(i, _)| i)
    }

    /// Indices of join edges connecting `left` with `right` (one endpoint
    /// in each set).
    pub fn joins_between(&self, left: RelSet, right: RelSet) -> Vec<usize> {
        self.joins
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                let l = e.left.rel;
                let r = e.right.rel;
                (left.contains(l) && right.contains(r)) || (left.contains(r) && right.contains(l))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether at least one join edge connects the two (disjoint) sets.
    pub fn sets_connected(&self, left: RelSet, right: RelSet) -> bool {
        self.joins.iter().any(|e| {
            let l = e.left.rel;
            let r = e.right.rel;
            (left.contains(l) && right.contains(r)) || (left.contains(r) && right.contains(l))
        })
    }

    /// Whether the induced subgraph on `set` is connected (singletons are
    /// connected; the empty set is not).
    pub fn is_connected(&self, set: RelSet) -> bool {
        let Some(first) = set.iter().next() else {
            return false;
        };
        let mut reached = RelSet::single(first);
        loop {
            let mut grew = false;
            for e in &self.joins {
                let l = e.left.rel;
                let r = e.right.rel;
                if set.contains(l) && set.contains(r) {
                    if reached.contains(l) && !reached.contains(r) {
                        reached.insert(r);
                        grew = true;
                    } else if reached.contains(r) && !reached.contains(l) {
                        reached.insert(l);
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        reached == set
    }

    /// Relations adjacent to `rel` through join edges.
    pub fn neighbors(&self, rel: RelId) -> RelSet {
        let mut out = RelSet::EMPTY;
        for e in &self.joins {
            if e.left.rel == rel {
                out.insert(e.right.rel);
            } else if e.right.rel == rel {
                out.insert(e.left.rel);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Lit};
    use hfqo_catalog::ColumnId;

    /// A chain query r0 - r1 - r2 with one selection on r1.
    pub(crate) fn chain3() -> QueryGraph {
        let rels = (0..3)
            .map(|i| Relation {
                table: TableId(i),
                alias: format!("t{i}"),
            })
            .collect();
        let joins = vec![
            JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(0)),
            },
            JoinEdge {
                left: BoundColumn::new(RelId(1), ColumnId(1)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(2), ColumnId(0)),
            },
        ];
        let sels = vec![Selection {
            column: BoundColumn::new(RelId(1), ColumnId(2)),
            op: CompareOp::Gt,
            value: Lit::Int(5),
        }];
        QueryGraph::new(rels, joins, sels, vec![], vec![])
    }

    #[test]
    fn relset_basics() {
        let mut s = RelSet::EMPTY;
        assert!(s.is_empty());
        s.insert(RelId(3));
        s.insert(RelId(5));
        assert_eq!(s.len(), 2);
        assert!(s.contains(RelId(3)));
        assert!(!s.contains(RelId(4)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![RelId(3), RelId(5)]);
        assert_eq!(s.to_string(), "{3,5}");
    }

    #[test]
    fn relset_algebra() {
        let a = RelSet::single(RelId(0)).union(RelSet::single(RelId(1)));
        let b = RelSet::single(RelId(1)).union(RelSet::single(RelId(2)));
        assert_eq!(a.intersect(b), RelSet::single(RelId(1)));
        assert_eq!(a.minus(b), RelSet::single(RelId(0)));
        assert!(!a.is_disjoint(b));
        assert!(a.union(b).is_superset(a));
        assert_eq!(RelSet::full(3).len(), 3);
        assert_eq!(RelSet::full(64).len(), 64);
    }

    #[test]
    fn graph_connectivity() {
        let g = chain3();
        assert!(g.is_connected(RelSet::full(3)));
        // {0, 2} is not connected without r1 in the set.
        let s02 = RelSet::single(RelId(0)).union(RelSet::single(RelId(2)));
        assert!(!g.is_connected(s02));
        assert!(g.is_connected(RelSet::single(RelId(1))));
        assert!(!g.is_connected(RelSet::EMPTY));
    }

    #[test]
    fn joins_between_sets() {
        let g = chain3();
        let left = RelSet::single(RelId(0)).union(RelSet::single(RelId(1)));
        let right = RelSet::single(RelId(2));
        assert_eq!(g.joins_between(left, right), vec![1]);
        assert!(g.sets_connected(left, right));
        assert!(!g.sets_connected(RelSet::single(RelId(0)), right));
    }

    #[test]
    fn selections_and_neighbors() {
        let g = chain3();
        assert_eq!(g.selections_on(RelId(1)).collect::<Vec<_>>(), vec![0]);
        assert_eq!(g.selections_on(RelId(0)).count(), 0);
        assert_eq!(
            g.neighbors(RelId(1)),
            RelSet::single(RelId(0)).union(RelSet::single(RelId(2)))
        );
    }

    #[test]
    fn label_builder() {
        let g = chain3().with_label("8c");
        assert_eq!(g.label.as_deref(), Some("8c"));
    }
}
