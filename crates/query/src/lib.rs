//! # hfqo-query
//!
//! Bound query representation: the *query graph* (relations, join edges,
//! selection predicates) that every optimizer in this project — traditional
//! or learned — searches over, plus logical join trees and physical plan
//! trees, and the binder that produces a graph from a parsed SQL statement
//! and a catalog.
//!
//! Relation subsets are represented as 64-bit bitsets ([`RelSet`]), which
//! caps queries at 64 relations — far above the paper's maximum of 17 — and
//! makes connectivity tests and DP table keys O(1).
//!
//! ```
//! use hfqo_catalog::{Catalog, Column, ColumnType, TableSchema};
//! use hfqo_query::bind::bind_select;
//! use hfqo_sql::parse_select;
//!
//! let mut catalog = Catalog::new();
//! for name in ["a", "b"] {
//!     catalog
//!         .add_table(TableSchema::new(name, vec![Column::new("id", ColumnType::Int)]))
//!         .unwrap();
//! }
//! let stmt = parse_select("SELECT COUNT(*) FROM a, b WHERE a.id = b.id").unwrap();
//! let graph = bind_select(&stmt, &catalog).unwrap();
//! assert_eq!(graph.relation_count(), 2);
//! assert_eq!(graph.joins().len(), 1);
//! ```

pub mod bind;
pub mod display;
pub mod error;
pub mod fingerprint;
pub mod graph;
pub mod logical;
pub mod physical;
pub mod predicate;

pub use bind::bind_select;
pub use error::QueryError;
pub use fingerprint::{
    fingerprint, template_fingerprint, ParamVector, QueryFingerprint, TemplateFingerprint,
};
pub use graph::{QueryGraph, RelId, RelSet, Relation};
pub use logical::{tree_to_actions, Forest, JoinTree};
pub use physical::{AccessPath, AggAlgo, JoinAlgo, PhysicalPlan, PlanNode};
pub use predicate::{AggExpr, BoundColumn, JoinEdge, Lit, Selection};
