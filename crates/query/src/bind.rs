//! Binding: parsed SQL → query graph.

use crate::error::QueryError;
use crate::graph::{QueryGraph, RelId, Relation};
use crate::predicate::{AggExpr, BoundColumn, JoinEdge, Lit, Selection};
use hfqo_catalog::{Catalog, ColumnType};
use hfqo_sql::ast::{ColumnName, SelectItem, SelectStmt, WherePred};
use std::collections::HashMap;

/// Binds a parsed SELECT against a catalog, producing a [`QueryGraph`].
///
/// Performs alias resolution, column resolution, and comparison type
/// checking (numeric with numeric, text with text).
pub fn bind_select(stmt: &SelectStmt, catalog: &Catalog) -> Result<QueryGraph, QueryError> {
    if stmt.from.len() > 64 {
        return Err(QueryError::TooManyRelations(stmt.from.len()));
    }

    // Resolve FROM.
    let mut relations = Vec::with_capacity(stmt.from.len());
    let mut by_alias: HashMap<&str, RelId> = HashMap::with_capacity(stmt.from.len());
    for (i, tref) in stmt.from.iter().enumerate() {
        let table = catalog.table_by_name(&tref.table)?;
        if by_alias
            .insert(tref.alias.as_str(), RelId(i as u32))
            .is_some()
        {
            return Err(QueryError::DuplicateAlias(tref.alias.clone()));
        }
        relations.push(Relation {
            table,
            alias: tref.alias.clone(),
        });
    }

    let resolve = |name: &ColumnName| -> Result<(BoundColumn, ColumnType), QueryError> {
        let rel = *by_alias
            .get(name.qualifier.as_str())
            .ok_or_else(|| QueryError::UnknownAlias(name.qualifier.clone()))?;
        let table = relations[rel.index()].table;
        let column = catalog.resolve_column(table, &name.column)?;
        let ty = catalog
            .table(table)?
            .column(column)
            .expect("resolved column exists")
            .ty();
        Ok((BoundColumn::new(rel, column), ty))
    };

    // Resolve WHERE.
    let mut joins = Vec::new();
    let mut selections = Vec::new();
    for pred in &stmt.predicates {
        match pred {
            WherePred::ColCol { left, op, right } => {
                let (lcol, lty) = resolve(left)?;
                let (rcol, rty) = resolve(right)?;
                check_types(lty, rty, &format!("{left} vs {right}"))?;
                if lcol.rel == rcol.rel {
                    // Same-relation column comparison: treat as a selection
                    // the estimator handles with default selectivity. The
                    // workloads do not produce these, but binding must not
                    // mis-classify them as joins.
                    return Err(QueryError::TypeMismatch(format!(
                        "self-comparison `{left} {} {right}` within one relation \
                         is not supported",
                        op.sql()
                    )));
                }
                // Normalise edge orientation: lower relation id on the left.
                let (l, o, r) = if lcol.rel <= rcol.rel {
                    (lcol, *op, rcol)
                } else {
                    (rcol, op.flipped(), lcol)
                };
                joins.push(JoinEdge {
                    left: l,
                    op: o,
                    right: r,
                });
            }
            WherePred::ColLit { left, op, lit } => {
                let (col, ty) = resolve(left)?;
                let lit: Lit = lit.clone().into();
                let lit_ty = match lit {
                    Lit::Int(_) => ColumnType::Int,
                    Lit::Float(_) => ColumnType::Float,
                    Lit::Str(_) => ColumnType::Text,
                };
                check_types(ty, lit_ty, &format!("{left} vs literal {lit}"))?;
                selections.push(Selection {
                    column: col,
                    op: *op,
                    value: lit,
                });
            }
        }
    }

    // Resolve select list and GROUP BY.
    let mut aggregates = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard | SelectItem::Column(_) => {
                // Plain projections do not affect optimization decisions in
                // this engine; columns are still validated.
                if let SelectItem::Column(c) = item {
                    resolve(c)?;
                }
            }
            SelectItem::Aggregate { func, column } => {
                let column = match column {
                    Some(c) => Some(resolve(c)?.0),
                    None => None,
                };
                aggregates.push(AggExpr {
                    func: *func,
                    column,
                });
            }
        }
    }
    let mut group_by = Vec::with_capacity(stmt.group_by.len());
    for c in &stmt.group_by {
        group_by.push(resolve(c)?.0);
    }

    Ok(QueryGraph::new(
        relations, joins, selections, aggregates, group_by,
    ))
}

fn check_types(a: ColumnType, b: ColumnType, ctx: &str) -> Result<(), QueryError> {
    let numeric = |t: ColumnType| matches!(t, ColumnType::Int | ColumnType::Float);
    let compatible = (numeric(a) && numeric(b)) || (a == ColumnType::Text && b == ColumnType::Text);
    if compatible {
        Ok(())
    } else {
        Err(QueryError::TypeMismatch(format!(
            "cannot compare {} with {} ({ctx})",
            a.name(),
            b.name()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Column, TableSchema};
    use hfqo_sql::parse_select;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(TableSchema::new(
            "title",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("year", ColumnType::Int),
                Column::new("name", ColumnType::Text),
            ],
        ))
        .unwrap();
        c.add_table(TableSchema::new(
            "cast_info",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("movie_id", ColumnType::Int),
                Column::new("note", ColumnType::Text),
            ],
        ))
        .unwrap();
        c
    }

    fn bind(sql: &str) -> Result<QueryGraph, QueryError> {
        bind_select(&parse_select(sql).unwrap(), &catalog())
    }

    #[test]
    fn binds_join_query() {
        let g = bind(
            "SELECT COUNT(*) FROM title t, cast_info ci \
             WHERE t.id = ci.movie_id AND t.year > 1990 AND ci.note = 'actor'",
        )
        .unwrap();
        assert_eq!(g.relation_count(), 2);
        assert_eq!(g.joins().len(), 1);
        assert_eq!(g.selections().len(), 2);
        assert_eq!(g.aggregates().len(), 1);
        // Edge is normalised with the lower rel on the left.
        assert_eq!(g.joins()[0].left.rel, RelId(0));
        assert_eq!(g.joins()[0].right.rel, RelId(1));
    }

    #[test]
    fn normalises_reversed_edge() {
        let g = bind("SELECT * FROM title t, cast_info ci WHERE ci.movie_id = t.id").unwrap();
        assert_eq!(g.joins()[0].left.rel, RelId(0));
    }

    #[test]
    fn self_join_aliases_are_distinct_relations() {
        let g = bind("SELECT * FROM cast_info a, cast_info b WHERE a.id = b.movie_id").unwrap();
        assert_eq!(g.relation_count(), 2);
        assert_eq!(g.relation(RelId(0)).table, g.relation(RelId(1)).table);
    }

    #[test]
    fn duplicate_alias_rejected() {
        assert!(matches!(
            bind("SELECT * FROM title t, cast_info t"),
            Err(QueryError::DuplicateAlias(_))
        ));
    }

    #[test]
    fn unknown_alias_rejected() {
        assert!(matches!(
            bind("SELECT * FROM title t WHERE x.id = 3"),
            Err(QueryError::UnknownAlias(_))
        ));
    }

    #[test]
    fn unknown_column_rejected() {
        assert!(matches!(
            bind("SELECT * FROM title t WHERE t.nope = 3"),
            Err(QueryError::Catalog(_))
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        assert!(matches!(
            bind("SELECT * FROM title t WHERE t.name > 3"),
            Err(QueryError::TypeMismatch(_))
        ));
        assert!(matches!(
            bind("SELECT * FROM title t, cast_info ci WHERE t.year = ci.note"),
            Err(QueryError::TypeMismatch(_))
        ));
    }

    #[test]
    fn same_relation_comparison_rejected() {
        assert!(bind("SELECT * FROM title t WHERE t.id = t.year").is_err());
    }

    #[test]
    fn group_by_binds() {
        let g = bind(
            "SELECT MIN(t.year) FROM title t, cast_info ci \
             WHERE t.id = ci.movie_id GROUP BY t.name",
        )
        .unwrap();
        assert_eq!(g.group_by().len(), 1);
        assert_eq!(g.aggregates()[0].func, hfqo_sql::AggFunc::Min);
    }
}
