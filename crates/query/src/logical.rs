//! Logical join trees.
//!
//! A [`JoinTree`] is the object ReJOIN's episodes construct: an unordered
//! binary tree over the query's relations, with no physical decisions yet.
//! The traditional optimizer also produces one as the skeleton of its
//! physical plan.

use crate::graph::{RelId, RelSet};

/// A binary join tree over query relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinTree {
    /// A base relation.
    Leaf(RelId),
    /// A join of two subtrees.
    Join(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// A leaf.
    pub fn leaf(rel: RelId) -> Self {
        JoinTree::Leaf(rel)
    }

    /// Joins two subtrees.
    pub fn join(left: JoinTree, right: JoinTree) -> Self {
        JoinTree::Join(Box::new(left), Box::new(right))
    }

    /// The set of relations covered by this tree.
    pub fn rel_set(&self) -> RelSet {
        match self {
            JoinTree::Leaf(r) => RelSet::single(*r),
            JoinTree::Join(l, r) => l.rel_set().union(r.rel_set()),
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 1,
            JoinTree::Join(l, r) => l.leaf_count() + r.leaf_count(),
        }
    }

    /// Number of join nodes (`leaf_count - 1`).
    pub fn join_count(&self) -> usize {
        self.leaf_count().saturating_sub(1)
    }

    /// Height of the tree (a leaf has height 0).
    pub fn height(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 0,
            JoinTree::Join(l, r) => 1 + l.height().max(r.height()),
        }
    }

    /// Depth of `rel` below this node, or `None` if absent. The root's own
    /// leaves in a single-leaf tree have depth 0.
    pub fn depth_of(&self, rel: RelId) -> Option<usize> {
        match self {
            JoinTree::Leaf(r) => (*r == rel).then_some(0),
            JoinTree::Join(l, r) => l.depth_of(rel).or_else(|| r.depth_of(rel)).map(|d| d + 1),
        }
    }

    /// Whether the tree is left-deep (every right child is a leaf).
    pub fn is_left_deep(&self) -> bool {
        match self {
            JoinTree::Leaf(_) => true,
            JoinTree::Join(l, r) => matches!(**r, JoinTree::Leaf(_)) && l.is_left_deep(),
        }
    }

    /// Visits leaves left-to-right.
    pub fn leaves(&self) -> Vec<RelId> {
        let mut out = Vec::with_capacity(self.leaf_count());
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<RelId>) {
        match self {
            JoinTree::Leaf(r) => out.push(*r),
            JoinTree::Join(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// Compact textual form, e.g. `((0 ⋈ 2) ⋈ (1 ⋈ 3))`.
    pub fn compact(&self) -> String {
        match self {
            JoinTree::Leaf(r) => r.0.to_string(),
            JoinTree::Join(l, r) => format!("({} ⋈ {})", l.compact(), r.compact()),
        }
    }
}

/// An ordered forest of join subtrees: ReJOIN's episode state.
///
/// The paper's transition is `s_{i+1} = (s_i − {s_i[x], s_i[y]}) ∪
/// {s_i[x] ⋈ s_i[y]}`. This type fixes the set's element order — required
/// for the integer pair actions to be well defined — with the convention:
/// *remove positions `x` and `y`, append the merged tree at the end*. The
/// RL environment and the expert-trace generator must (and do) share this
/// exact convention; a test in `hfqo-rejoin` replays the paper's Figure 2
/// episode to pin it down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Forest {
    trees: Vec<JoinTree>,
}

impl Forest {
    /// The initial state for an `n`-relation query: each relation is its
    /// own subtree, in relation order.
    pub fn initial(n: usize) -> Self {
        Self {
            trees: (0..n).map(|i| JoinTree::leaf(RelId(i as u32))).collect(),
        }
    }

    /// A forest from explicit trees.
    pub fn from_trees(trees: Vec<JoinTree>) -> Self {
        Self { trees }
    }

    /// The subtrees, in order.
    pub fn trees(&self) -> &[JoinTree] {
        &self.trees
    }

    /// Number of subtrees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest holds no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Whether this is a terminal state (a single tree).
    pub fn is_terminal(&self) -> bool {
        self.trees.len() <= 1
    }

    /// Merges the subtrees at positions `x` and `y` (`x ≠ y`, both in
    /// range): removes both and appends `trees[x] ⋈ trees[y]`. Returns
    /// `false` (leaving the forest untouched) on an invalid pair.
    pub fn merge(&mut self, x: usize, y: usize) -> bool {
        if x == y || x >= self.trees.len() || y >= self.trees.len() {
            return false;
        }
        // Remove the higher index first so the lower stays valid.
        let (hi, lo) = if x > y { (x, y) } else { (y, x) };
        let hi_tree = self.trees.remove(hi);
        let lo_tree = self.trees.remove(lo);
        let (left, right) = if x < y {
            (lo_tree, hi_tree)
        } else {
            (hi_tree, lo_tree)
        };
        self.trees.push(JoinTree::join(left, right));
        true
    }

    /// The single remaining tree of a terminal forest.
    pub fn into_tree(mut self) -> Option<JoinTree> {
        if self.trees.len() == 1 {
            self.trees.pop()
        } else {
            None
        }
    }

    /// Position of the subtree covering exactly `set`, if present.
    pub fn position_of(&self, set: RelSet) -> Option<usize> {
        self.trees.iter().position(|t| t.rel_set() == set)
    }
}

/// Derives the forest-merge action sequence that reconstructs `tree`
/// starting from [`Forest::initial`]. Join nodes are replayed bottom-up in
/// post-order; the returned `(x, y)` pairs use the shared forest
/// convention, so feeding them to [`Forest::merge`] reproduces `tree`
/// exactly. This is how expert plans are converted into imitation-learning
/// demonstrations (§5.1).
pub fn tree_to_actions(tree: &JoinTree, n: usize) -> Vec<(usize, usize)> {
    let mut actions = Vec::with_capacity(tree.join_count());
    let mut forest = Forest::initial(n);
    let mut stack = Vec::new();
    collect_joins_postorder(tree, &mut stack);
    for (lset, rset) in stack {
        let x = forest.position_of(lset).expect("left subtree present");
        let y = forest.position_of(rset).expect("right subtree present");
        actions.push((x, y));
        let merged = forest.merge(x, y);
        debug_assert!(merged);
    }
    actions
}

fn collect_joins_postorder(tree: &JoinTree, out: &mut Vec<(RelSet, RelSet)>) {
    if let JoinTree::Join(l, r) = tree {
        collect_joins_postorder(l, out);
        collect_joins_postorder(r, out);
        out.push((l.rel_set(), r.rel_set()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bushy4() -> JoinTree {
        // ((0 ⋈ 2) ⋈ (1 ⋈ 3)) — the terminal state of the paper's Figure 2.
        JoinTree::join(
            JoinTree::join(JoinTree::leaf(RelId(0)), JoinTree::leaf(RelId(2))),
            JoinTree::join(JoinTree::leaf(RelId(1)), JoinTree::leaf(RelId(3))),
        )
    }

    #[test]
    fn rel_set_and_counts() {
        let t = bushy4();
        assert_eq!(t.rel_set(), RelSet::full(4));
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.join_count(), 3);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn depths() {
        let t = bushy4();
        assert_eq!(t.depth_of(RelId(0)), Some(2));
        assert_eq!(t.depth_of(RelId(3)), Some(2));
        assert_eq!(t.depth_of(RelId(9)), None);
        assert_eq!(JoinTree::leaf(RelId(1)).depth_of(RelId(1)), Some(0));
    }

    #[test]
    fn shape_predicates() {
        assert!(!bushy4().is_left_deep());
        let ld = JoinTree::join(
            JoinTree::join(JoinTree::leaf(RelId(0)), JoinTree::leaf(RelId(1))),
            JoinTree::leaf(RelId(2)),
        );
        assert!(ld.is_left_deep());
    }

    #[test]
    fn leaves_order_and_compact() {
        let t = bushy4();
        assert_eq!(t.leaves(), vec![RelId(0), RelId(2), RelId(1), RelId(3)]);
        assert_eq!(t.compact(), "((0 ⋈ 2) ⋈ (1 ⋈ 3))");
    }

    /// The paper's Figure 2 episode: actions [1,3] then [2,3] then [1,2]
    /// over relations {A=0, B=1, C=2, D=3} yield ((A ⋈ C) ⋈ (B ⋈ D)).
    ///
    /// (The paper displays 1-based indices; ours are 0-based, so its
    /// `[1,3]` is our `(0,2)`, etc.)
    #[test]
    fn figure2_episode_replays() {
        let mut forest = Forest::initial(4);
        assert!(forest.merge(0, 2)); // A ⋈ C → forest [B, D, (A⋈C)]
        assert!(forest.merge(0, 1)); // B ⋈ D → forest [(A⋈C), (B⋈D)]
        assert!(forest.merge(0, 1)); // final join
        assert!(forest.is_terminal());
        let tree = forest.into_tree().expect("terminal");
        assert_eq!(tree.compact(), "((0 ⋈ 2) ⋈ (1 ⋈ 3))");
    }

    #[test]
    fn merge_rejects_invalid_pairs() {
        let mut forest = Forest::initial(3);
        assert!(!forest.merge(0, 0));
        assert!(!forest.merge(0, 5));
        assert_eq!(forest.len(), 3);
        assert!(!forest.is_terminal());
        assert!(!forest.is_empty());
    }

    #[test]
    fn merge_order_controls_join_sides() {
        let mut f1 = Forest::initial(2);
        f1.merge(0, 1);
        assert_eq!(f1.trees()[0].compact(), "(0 ⋈ 1)");
        let mut f2 = Forest::initial(2);
        f2.merge(1, 0);
        assert_eq!(f2.trees()[0].compact(), "(1 ⋈ 0)");
    }

    #[test]
    fn tree_to_actions_roundtrip() {
        let tree = bushy4();
        let actions = tree_to_actions(&tree, 4);
        assert_eq!(actions.len(), 3);
        let mut forest = Forest::initial(4);
        for (x, y) in actions {
            assert!(forest.merge(x, y));
        }
        assert_eq!(forest.into_tree().expect("terminal"), tree);
    }

    #[test]
    fn tree_to_actions_left_deep() {
        let ld = JoinTree::join(
            JoinTree::join(JoinTree::leaf(RelId(2)), JoinTree::leaf(RelId(0))),
            JoinTree::leaf(RelId(1)),
        );
        let actions = tree_to_actions(&ld, 3);
        let mut forest = Forest::initial(3);
        for (x, y) in actions {
            assert!(forest.merge(x, y));
        }
        assert_eq!(forest.into_tree().expect("terminal"), ld);
    }

    #[test]
    fn position_of_finds_subtrees() {
        let forest = Forest::initial(3);
        assert_eq!(forest.position_of(RelSet::single(RelId(2))), Some(2));
        assert_eq!(forest.position_of(RelSet::full(2)), None);
    }
}
