//! Query fingerprinting for the plan cache: the two-part
//! (template, params) key plus the exact per-query fingerprint.
//!
//! Production traffic is overwhelmingly *templated*: one query shape
//! served millions of times with different constants (`id = 3`,
//! `id = 7141`, …). A cache keyed on literal values gets a 0% hit rate
//! on exactly that workload, so fingerprinting is split in two:
//!
//! * [`TemplateFingerprint`] — a stable 128-bit hash of the query's
//!   *structure*: relations, join edges, and for every selection
//!   predicate its column, operator, and the literal's **type tag**
//!   (int / float / string) — a typed *slot*, not the value. Two
//!   queries share a template fingerprint exactly when they are the
//!   same statement with different constants bound into the same
//!   slots, which means a physical plan produced for one is
//!   structurally valid (predicate indices and all) for the other.
//! * [`ParamVector`] — the literal values extracted from the selection
//!   slots, in slot (stored selection) order. Together with the
//!   template it reconstitutes the exact query; on its own it is what
//!   selectivity estimation scores to decide whether a cached plan
//!   still fits the current constants (see
//!   `hfqo_stats::param_selectivities`).
//! * [`QueryFingerprint`] — the exact fingerprint, hashing literal
//!   *values* as before. Two graphs share it exactly when they are the
//!   same query, constants included. The serving cache keeps it as a
//!   fast path *within* a template entry: a repeated exact query skips
//!   selectivity scoring entirely.
//!
//! ## Normalization rules
//!
//! Both fingerprints include (all in stored order — plans reference
//! join conditions, selections, and relations *by index*, so permuting
//! any of these lists changes what a cached plan means):
//!
//! * relations, as catalog [`TableId`]s in FROM order;
//! * join edges: `(left rel, left column, operator, right rel, right
//!   column)` per edge (the binder already stores `left.rel <
//!   right.rel`, so edge orientation is canonical);
//! * selection predicates' columns and operators, in stored order;
//! * aggregate expressions and GROUP BY columns (they decide whether a
//!   plan carries an aggregate root and what it computes).
//!
//! They differ on exactly one rule: the **exact** fingerprint hashes
//! each selection literal's type tag *and value*, while the
//! **template** fingerprint hashes only the type tag and exports the
//! value through the [`ParamVector`]. A changed literal therefore
//! changes the exact fingerprint but not the template; a changed
//! literal *type* (e.g. `Int` → `Float`) changes both.
//!
//! Both exclude (plan-irrelevant presentation):
//!
//! * relation *aliases* — `FROM title t` and `FROM title x` bind to the
//!   same positional [`RelId`](crate::RelId)s, produce identical plans and identical
//!   row values, and differ only in output column naming (recomputed per
//!   execution, never cached);
//! * the optional display `label`.
//!
//! ## Hash construction
//!
//! The content is folded through two independent FNV-1a-64 streams
//! (different offset bases) concatenated into a `u128`. FNV is chosen
//! over `std`'s `DefaultHasher` because it is *stable*: fingerprints are
//! reproducible across processes, runs, and Rust versions, so cache
//! behaviour is deterministic and testable. At 128 bits, accidental
//! collisions are not a practical concern; the cache trusts the
//! fingerprint and performs no structural verification on hit. Template
//! and exact fingerprints are distinct Rust types, so they can never be
//! compared or keyed against each other by accident.

use crate::graph::QueryGraph;
use crate::predicate::{BoundColumn, Lit};
use hfqo_catalog::TableId;
use hfqo_sql::{AggFunc, CompareOp};
use std::fmt;

/// A stable 128-bit fingerprint of a query graph's plan-relevant
/// content, literal values included. See the [module docs](self) for
/// the normalization rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryFingerprint(pub u128);

impl fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A stable 128-bit fingerprint of a query graph's *structure*:
/// literal values are reduced to typed slots, so every parameterization
/// of one query template shares the same value. See the
/// [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemplateFingerprint(pub u128);

impl fmt::Display for TemplateFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The literal values of a query's selection slots, in slot (stored
/// selection) order. `(TemplateFingerprint, ParamVector)` identifies a
/// query exactly; the vector alone is what selectivity estimation
/// scores against a template's cached plans.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamVector(Vec<Lit>);

impl ParamVector {
    /// Wraps literals already in slot order.
    pub fn new(params: Vec<Lit>) -> Self {
        Self(params)
    }

    /// The literals, in slot order.
    pub fn params(&self) -> &[Lit] {
        &self.0
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the template has no literal slots.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for ParamVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

/// Two chained FNV-1a-64 streams with distinct offset bases.
struct Fnv2 {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const FNV_OFFSET_A: u64 = 0xCBF2_9CE4_8422_2325;
// A second, independent stream: the standard offset basis folded over an
// arbitrary odd constant so the two lanes decorrelate from byte one.
const FNV_OFFSET_B: u64 = 0xCBF2_9CE4_8422_2325 ^ 0x9E37_79B9_7F4A_7C15;

impl Fnv2 {
    fn new() -> Self {
        Self {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    fn byte(&mut self, v: u8) {
        self.a = (self.a ^ u64::from(v)).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ u64::from(v)).wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, vs: &[u8]) {
        for &v in vs {
            self.byte(v);
        }
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Length-prefixed variable-size payload, so adjacent fields cannot
    /// alias (`"ab" + "c"` vs `"a" + "bc"`).
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn finish(self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

fn column(h: &mut Fnv2, c: BoundColumn) {
    h.u32(c.rel.0);
    h.u32(c.column.0);
}

fn compare_op(h: &mut Fnv2, op: CompareOp) {
    // Explicit discriminants: reordering the enum must not silently
    // change fingerprints.
    h.byte(match op {
        CompareOp::Eq => 0,
        CompareOp::Neq => 1,
        CompareOp::Lt => 2,
        CompareOp::Le => 3,
        CompareOp::Gt => 4,
        CompareOp::Ge => 5,
    });
}

/// The literal's type tag: the part of a literal the template hashes.
fn lit_tag(lit: &Lit) -> u8 {
    match lit {
        Lit::Int(_) => 0,
        Lit::Float(_) => 1,
        Lit::Str(_) => 2,
    }
}

fn literal(h: &mut Fnv2, lit: &Lit) {
    h.byte(lit_tag(lit));
    match lit {
        Lit::Int(v) => h.u64(*v as u64),
        Lit::Float(v) => h.u64(v.to_bits()),
        Lit::Str(s) => h.str(s),
    }
}

fn agg_func(h: &mut Fnv2, f: AggFunc) {
    h.byte(match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
    });
}

/// Folds the graph's plan-relevant content into `h`. With
/// `params: None` the selection literals are hashed by value (the exact
/// fingerprint); with `Some`, only their type tags are hashed and the
/// values are pushed, in slot order, into the vector (the template
/// fingerprint). Everything else is byte-identical between the two
/// modes.
fn fold_graph(h: &mut Fnv2, graph: &QueryGraph, mut params: Option<&mut Vec<Lit>>) {
    // Relations: catalog table per FROM slot. Aliases are presentation
    // only (see module docs) and are deliberately not hashed.
    h.u64(graph.relation_count() as u64);
    for rel in graph.relations() {
        let TableId(t) = rel.table;
        h.u32(t);
    }
    // Join edges, in stored order (plans index into this list).
    h.u64(graph.joins().len() as u64);
    for edge in graph.joins() {
        column(h, edge.left);
        compare_op(h, edge.op);
        column(h, edge.right);
    }
    // Selections, in stored order. The exact fingerprint hashes the
    // literal values; the template hashes only their type tags and
    // extracts the values as the parameter vector.
    h.u64(graph.selections().len() as u64);
    for sel in graph.selections() {
        column(h, sel.column);
        compare_op(h, sel.op);
        match params.as_deref_mut() {
            None => literal(h, &sel.value),
            Some(out) => {
                h.byte(lit_tag(&sel.value));
                out.push(sel.value.clone());
            }
        }
    }
    // Output shape: aggregates and grouping decide the aggregate root.
    h.u64(graph.aggregates().len() as u64);
    for agg in graph.aggregates() {
        agg_func(h, agg.func);
        match agg.column {
            Some(c) => {
                h.byte(1);
                column(h, c);
            }
            None => h.byte(0),
        }
    }
    h.u64(graph.group_by().len() as u64);
    for &c in graph.group_by() {
        column(h, c);
    }
}

/// Computes the exact fingerprint of `graph` (literal values included)
/// under the normalization rules in the [module docs](self).
pub fn fingerprint(graph: &QueryGraph) -> QueryFingerprint {
    let mut h = Fnv2::new();
    fold_graph(&mut h, graph, None);
    QueryFingerprint(h.finish())
}

/// Computes the template fingerprint of `graph` (literal values reduced
/// to typed slots) and extracts the parameter vector, in slot order.
/// See the [module docs](self).
pub fn template_fingerprint(graph: &QueryGraph) -> (TemplateFingerprint, ParamVector) {
    let mut h = Fnv2::new();
    let mut params = Vec::with_capacity(graph.selections().len());
    fold_graph(&mut h, graph, Some(&mut params));
    (TemplateFingerprint(h.finish()), ParamVector::new(params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RelId, Relation};
    use crate::predicate::{AggExpr, JoinEdge, Selection};
    use hfqo_catalog::ColumnId;

    fn graph() -> QueryGraph {
        let rels = (0..3)
            .map(|i| Relation {
                table: TableId(i),
                alias: format!("t{i}"),
            })
            .collect();
        let joins = vec![
            JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(0)),
            },
            JoinEdge {
                left: BoundColumn::new(RelId(1), ColumnId(1)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(2), ColumnId(0)),
            },
        ];
        let sels = vec![Selection {
            column: BoundColumn::new(RelId(1), ColumnId(2)),
            op: CompareOp::Gt,
            value: Lit::Int(5),
        }];
        let aggs = vec![AggExpr {
            func: AggFunc::Count,
            column: None,
        }];
        QueryGraph::new(rels, joins, sels, aggs, vec![])
    }

    /// Rebuilds `g` with its selections replaced.
    fn with_selections(g: &QueryGraph, sels: Vec<Selection>) -> QueryGraph {
        QueryGraph::new(
            g.relations().to_vec(),
            g.joins().to_vec(),
            sels,
            g.aggregates().to_vec(),
            g.group_by().to_vec(),
        )
    }

    #[test]
    fn deterministic_and_stable() {
        let g = graph();
        assert_eq!(fingerprint(&g), fingerprint(&g));
        assert_eq!(fingerprint(&g), fingerprint(&graph()));
        // Pinned value: the fingerprint must be reproducible across
        // processes, runs, and releases (cache keys are allowed to
        // outlive a session). Update this constant deliberately if the
        // normalization rules or hash construction change.
        assert_eq!(
            fingerprint(&g).to_string(),
            "09b7d33011cbe9dc8ac1bd258a8ae4c5"
        );
    }

    #[test]
    fn template_is_deterministic_and_stable() {
        let g = graph();
        let (t1, p1) = template_fingerprint(&g);
        let (t2, p2) = template_fingerprint(&graph());
        assert_eq!(t1, t2);
        assert_eq!(p1, p2);
        assert_eq!(p1.params(), &[Lit::Int(5)]);
        // Pinned like the exact fingerprint: template keys may outlive
        // a session too. Update deliberately on rule changes.
        assert_eq!(t1.to_string(), "e90d1cc838be9301f3d7f13dedd93638");
    }

    #[test]
    fn different_literals_share_a_template_but_not_an_exact_fingerprint() {
        let base = graph();
        let changed = with_selections(
            &base,
            vec![Selection {
                column: BoundColumn::new(RelId(1), ColumnId(2)),
                op: CompareOp::Gt,
                value: Lit::Int(99_999),
            }],
        );
        let (tb, pb) = template_fingerprint(&base);
        let (tc, pc) = template_fingerprint(&changed);
        assert_eq!(tb, tc, "literal values are not part of the template");
        assert_ne!(pb, pc, "parameter vectors carry the values");
        assert_ne!(
            fingerprint(&base),
            fingerprint(&changed),
            "exact fingerprints keep hashing values"
        );
    }

    #[test]
    fn literal_type_tags_are_part_of_the_template() {
        let base = graph();
        let float = with_selections(
            &base,
            vec![Selection {
                column: BoundColumn::new(RelId(1), ColumnId(2)),
                op: CompareOp::Gt,
                value: Lit::Float(5.0),
            }],
        );
        let (tb, _) = template_fingerprint(&base);
        let (tf, _) = template_fingerprint(&float);
        assert_ne!(tb, tf, "Int and Float slots are different templates");
    }

    #[test]
    fn template_slot_order_matters() {
        let two = with_selections(
            &graph(),
            vec![
                Selection {
                    column: BoundColumn::new(RelId(0), ColumnId(1)),
                    op: CompareOp::Lt,
                    value: Lit::Int(1),
                },
                Selection {
                    column: BoundColumn::new(RelId(1), ColumnId(2)),
                    op: CompareOp::Gt,
                    value: Lit::Int(2),
                },
            ],
        );
        let mut sels = two.selections().to_vec();
        sels.swap(0, 1);
        let permuted = with_selections(&two, sels);
        let (t, p) = template_fingerprint(&two);
        let (tp, pp) = template_fingerprint(&permuted);
        assert_ne!(t, tp, "plans index selections by slot");
        assert_ne!(p, pp, "params are extracted in slot order");
    }

    #[test]
    fn template_hashes_structure() {
        let base = graph();
        let (t_base, _) = template_fingerprint(&base);
        // Changed comparison operator.
        let mut sels = base.selections().to_vec();
        sels[0].op = CompareOp::Ge;
        let (t_op, _) = template_fingerprint(&with_selections(&base, sels));
        assert_ne!(t_op, t_base, "operators are structural");
        // Changed backing table.
        let mut rels = base.relations().to_vec();
        rels[2].table = TableId(9);
        let g = QueryGraph::new(
            rels,
            base.joins().to_vec(),
            base.selections().to_vec(),
            base.aggregates().to_vec(),
            base.group_by().to_vec(),
        );
        let (t_table, _) = template_fingerprint(&g);
        assert_ne!(t_table, t_base, "tables are structural");
        // Aliases stay presentation-only.
        let renamed = QueryGraph::new(
            base.relations()
                .iter()
                .map(|r| Relation {
                    table: r.table,
                    alias: format!("x_{}", r.alias),
                })
                .collect(),
            base.joins().to_vec(),
            base.selections().to_vec(),
            base.aggregates().to_vec(),
            base.group_by().to_vec(),
        );
        let (t_renamed, _) = template_fingerprint(&renamed);
        assert_eq!(t_renamed, t_base, "aliases are presentation");
    }

    #[test]
    fn aliases_and_labels_are_ignored() {
        let base = fingerprint(&graph());
        let mut renamed = graph();
        renamed = QueryGraph::new(
            renamed
                .relations()
                .iter()
                .map(|r| Relation {
                    table: r.table,
                    alias: format!("x_{}", r.alias),
                })
                .collect(),
            renamed.joins().to_vec(),
            renamed.selections().to_vec(),
            renamed.aggregates().to_vec(),
            renamed.group_by().to_vec(),
        );
        assert_eq!(fingerprint(&renamed), base, "aliases are presentation");
        let labelled = graph().with_label("8c");
        assert_eq!(fingerprint(&labelled), base, "labels are presentation");
    }

    #[test]
    fn literals_tables_and_operators_matter() {
        let base = fingerprint(&graph());
        // Changed literal.
        let mut g = graph();
        let mut sels = g.selections().to_vec();
        sels[0].value = Lit::Int(6);
        g = with_selections(&g, sels);
        assert_ne!(fingerprint(&g), base, "literal values are hashed");
        // Changed comparison operator.
        let mut g = graph();
        let mut sels = g.selections().to_vec();
        sels[0].op = CompareOp::Ge;
        g = with_selections(&g, sels);
        assert_ne!(fingerprint(&g), base, "operators are hashed");
        // Changed backing table.
        let mut rels = graph().relations().to_vec();
        rels[2].table = TableId(9);
        let g = QueryGraph::new(
            rels,
            graph().joins().to_vec(),
            graph().selections().to_vec(),
            graph().aggregates().to_vec(),
            graph().group_by().to_vec(),
        );
        assert_ne!(fingerprint(&g), base, "tables are hashed");
    }

    #[test]
    fn list_order_matters() {
        // Plans reference join conditions by index: a permuted join list
        // is a *different* cache key even though the edge set is equal.
        let g = graph();
        let mut joins = g.joins().to_vec();
        joins.swap(0, 1);
        let permuted = QueryGraph::new(
            g.relations().to_vec(),
            joins,
            g.selections().to_vec(),
            g.aggregates().to_vec(),
            g.group_by().to_vec(),
        );
        assert_ne!(fingerprint(&permuted), fingerprint(&g));
    }

    #[test]
    fn output_shape_matters() {
        let g = graph();
        let no_agg = QueryGraph::new(
            g.relations().to_vec(),
            g.joins().to_vec(),
            g.selections().to_vec(),
            vec![],
            vec![],
        );
        assert_ne!(fingerprint(&no_agg), fingerprint(&g));
        let grouped = QueryGraph::new(
            g.relations().to_vec(),
            g.joins().to_vec(),
            g.selections().to_vec(),
            g.aggregates().to_vec(),
            vec![BoundColumn::new(RelId(0), ColumnId(1))],
        );
        assert_ne!(fingerprint(&grouped), fingerprint(&g));
        let (t_no_agg, _) = template_fingerprint(&no_agg);
        let (t_g, _) = template_fingerprint(&g);
        assert_ne!(t_no_agg, t_g, "output shape is structural");
    }

    #[test]
    fn adjacent_strings_cannot_alias() {
        let a = {
            let mut h = Fnv2::new();
            h.str("ab");
            h.str("c");
            h.finish()
        };
        let b = {
            let mut h = Fnv2::new();
            h.str("a");
            h.str("bc");
            h.finish()
        };
        assert_ne!(a, b);
    }
}
