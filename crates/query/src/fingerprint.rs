//! Query fingerprinting for the plan cache.
//!
//! A [`QueryFingerprint`] is a stable 128-bit hash of a bound
//! [`QueryGraph`]'s *plan-relevant* content: two graphs share a
//! fingerprint exactly when a physical plan produced for one is a valid,
//! result-correct plan for the other. The serving layer keys its plan
//! cache on it.
//!
//! ## Normalization rules
//!
//! What the fingerprint **includes** (all in stored order — plans
//! reference join conditions, selections, and relations *by index*, so
//! permuting any of these lists changes what a cached plan means):
//!
//! * relations, as catalog [`TableId`]s in FROM order;
//! * join edges: `(left rel, left column, operator, right rel, right
//!   column)` per edge (the binder already stores `left.rel <
//!   right.rel`, so edge orientation is canonical);
//! * selection predicates, *including their literal values* — a changed
//!   literal changes selectivity and possibly the optimal plan, so there
//!   is no parameterized-plan sharing;
//! * aggregate expressions and GROUP BY columns (they decide whether a
//!   plan carries an aggregate root and what it computes).
//!
//! What it **excludes** (plan-irrelevant presentation):
//!
//! * relation *aliases* — `FROM title t` and `FROM title x` bind to the
//!   same positional [`RelId`](crate::RelId)s, produce identical plans and identical
//!   row values, and differ only in output column naming (recomputed per
//!   execution, never cached);
//! * the optional display `label`.
//!
//! ## Hash construction
//!
//! The content is folded through two independent FNV-1a-64 streams
//! (different offset bases) concatenated into a `u128`. FNV is chosen
//! over `std`'s `DefaultHasher` because it is *stable*: fingerprints are
//! reproducible across processes, runs, and Rust versions, so cache
//! behaviour is deterministic and testable. At 128 bits, accidental
//! collisions are not a practical concern; the cache trusts the
//! fingerprint and performs no structural verification on hit.

use crate::graph::QueryGraph;
use crate::predicate::{BoundColumn, Lit};
use hfqo_catalog::TableId;
use hfqo_sql::{AggFunc, CompareOp};
use std::fmt;

/// A stable 128-bit fingerprint of a query graph's plan-relevant
/// content. See the [module docs](self) for the normalization rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryFingerprint(pub u128);

impl fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Two chained FNV-1a-64 streams with distinct offset bases.
struct Fnv2 {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const FNV_OFFSET_A: u64 = 0xCBF2_9CE4_8422_2325;
// A second, independent stream: the standard offset basis folded over an
// arbitrary odd constant so the two lanes decorrelate from byte one.
const FNV_OFFSET_B: u64 = 0xCBF2_9CE4_8422_2325 ^ 0x9E37_79B9_7F4A_7C15;

impl Fnv2 {
    fn new() -> Self {
        Self {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    fn byte(&mut self, v: u8) {
        self.a = (self.a ^ u64::from(v)).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ u64::from(v)).wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, vs: &[u8]) {
        for &v in vs {
            self.byte(v);
        }
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Length-prefixed variable-size payload, so adjacent fields cannot
    /// alias (`"ab" + "c"` vs `"a" + "bc"`).
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn finish(self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

fn column(h: &mut Fnv2, c: BoundColumn) {
    h.u32(c.rel.0);
    h.u32(c.column.0);
}

fn compare_op(h: &mut Fnv2, op: CompareOp) {
    // Explicit discriminants: reordering the enum must not silently
    // change fingerprints.
    h.byte(match op {
        CompareOp::Eq => 0,
        CompareOp::Neq => 1,
        CompareOp::Lt => 2,
        CompareOp::Le => 3,
        CompareOp::Gt => 4,
        CompareOp::Ge => 5,
    });
}

fn literal(h: &mut Fnv2, lit: &Lit) {
    match lit {
        Lit::Int(v) => {
            h.byte(0);
            h.u64(*v as u64);
        }
        Lit::Float(v) => {
            h.byte(1);
            h.u64(v.to_bits());
        }
        Lit::Str(s) => {
            h.byte(2);
            h.str(s);
        }
    }
}

fn agg_func(h: &mut Fnv2, f: AggFunc) {
    h.byte(match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
    });
}

/// Computes the fingerprint of `graph` under the normalization rules in
/// the [module docs](self).
pub fn fingerprint(graph: &QueryGraph) -> QueryFingerprint {
    let mut h = Fnv2::new();
    // Relations: catalog table per FROM slot. Aliases are presentation
    // only (see module docs) and are deliberately not hashed.
    h.u64(graph.relation_count() as u64);
    for rel in graph.relations() {
        let TableId(t) = rel.table;
        h.u32(t);
    }
    // Join edges, in stored order (plans index into this list).
    h.u64(graph.joins().len() as u64);
    for edge in graph.joins() {
        column(&mut h, edge.left);
        compare_op(&mut h, edge.op);
        column(&mut h, edge.right);
    }
    // Selections, in stored order, literals included (no parameterized
    // plan sharing).
    h.u64(graph.selections().len() as u64);
    for sel in graph.selections() {
        column(&mut h, sel.column);
        compare_op(&mut h, sel.op);
        literal(&mut h, &sel.value);
    }
    // Output shape: aggregates and grouping decide the aggregate root.
    h.u64(graph.aggregates().len() as u64);
    for agg in graph.aggregates() {
        agg_func(&mut h, agg.func);
        match agg.column {
            Some(c) => {
                h.byte(1);
                column(&mut h, c);
            }
            None => h.byte(0),
        }
    }
    h.u64(graph.group_by().len() as u64);
    for &c in graph.group_by() {
        column(&mut h, c);
    }
    QueryFingerprint(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RelId, Relation};
    use crate::predicate::{AggExpr, JoinEdge, Selection};
    use hfqo_catalog::ColumnId;

    fn graph() -> QueryGraph {
        let rels = (0..3)
            .map(|i| Relation {
                table: TableId(i),
                alias: format!("t{i}"),
            })
            .collect();
        let joins = vec![
            JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(0)),
            },
            JoinEdge {
                left: BoundColumn::new(RelId(1), ColumnId(1)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(2), ColumnId(0)),
            },
        ];
        let sels = vec![Selection {
            column: BoundColumn::new(RelId(1), ColumnId(2)),
            op: CompareOp::Gt,
            value: Lit::Int(5),
        }];
        let aggs = vec![AggExpr {
            func: AggFunc::Count,
            column: None,
        }];
        QueryGraph::new(rels, joins, sels, aggs, vec![])
    }

    #[test]
    fn deterministic_and_stable() {
        let g = graph();
        assert_eq!(fingerprint(&g), fingerprint(&g));
        assert_eq!(fingerprint(&g), fingerprint(&graph()));
        // Pinned value: the fingerprint must be reproducible across
        // processes, runs, and releases (cache keys are allowed to
        // outlive a session). Update this constant deliberately if the
        // normalization rules or hash construction change.
        assert_eq!(
            fingerprint(&g).to_string(),
            "09b7d33011cbe9dc8ac1bd258a8ae4c5"
        );
    }

    #[test]
    fn aliases_and_labels_are_ignored() {
        let base = fingerprint(&graph());
        let mut renamed = graph();
        renamed = QueryGraph::new(
            renamed
                .relations()
                .iter()
                .map(|r| Relation {
                    table: r.table,
                    alias: format!("x_{}", r.alias),
                })
                .collect(),
            renamed.joins().to_vec(),
            renamed.selections().to_vec(),
            renamed.aggregates().to_vec(),
            renamed.group_by().to_vec(),
        );
        assert_eq!(fingerprint(&renamed), base, "aliases are presentation");
        let labelled = graph().with_label("8c");
        assert_eq!(fingerprint(&labelled), base, "labels are presentation");
    }

    #[test]
    fn literals_tables_and_operators_matter() {
        let base = fingerprint(&graph());
        // Changed literal.
        let mut g = graph();
        let mut sels = g.selections().to_vec();
        sels[0].value = Lit::Int(6);
        g = QueryGraph::new(
            g.relations().to_vec(),
            g.joins().to_vec(),
            sels,
            g.aggregates().to_vec(),
            g.group_by().to_vec(),
        );
        assert_ne!(fingerprint(&g), base, "literal values are hashed");
        // Changed comparison operator.
        let mut g = graph();
        let mut sels = g.selections().to_vec();
        sels[0].op = CompareOp::Ge;
        g = QueryGraph::new(
            g.relations().to_vec(),
            g.joins().to_vec(),
            sels,
            g.aggregates().to_vec(),
            g.group_by().to_vec(),
        );
        assert_ne!(fingerprint(&g), base, "operators are hashed");
        // Changed backing table.
        let mut rels = graph().relations().to_vec();
        rels[2].table = TableId(9);
        let g = QueryGraph::new(
            rels,
            graph().joins().to_vec(),
            graph().selections().to_vec(),
            graph().aggregates().to_vec(),
            graph().group_by().to_vec(),
        );
        assert_ne!(fingerprint(&g), base, "tables are hashed");
    }

    #[test]
    fn list_order_matters() {
        // Plans reference join conditions by index: a permuted join list
        // is a *different* cache key even though the edge set is equal.
        let g = graph();
        let mut joins = g.joins().to_vec();
        joins.swap(0, 1);
        let permuted = QueryGraph::new(
            g.relations().to_vec(),
            joins,
            g.selections().to_vec(),
            g.aggregates().to_vec(),
            g.group_by().to_vec(),
        );
        assert_ne!(fingerprint(&permuted), fingerprint(&g));
    }

    #[test]
    fn output_shape_matters() {
        let g = graph();
        let no_agg = QueryGraph::new(
            g.relations().to_vec(),
            g.joins().to_vec(),
            g.selections().to_vec(),
            vec![],
            vec![],
        );
        assert_ne!(fingerprint(&no_agg), fingerprint(&g));
        let grouped = QueryGraph::new(
            g.relations().to_vec(),
            g.joins().to_vec(),
            g.selections().to_vec(),
            g.aggregates().to_vec(),
            vec![BoundColumn::new(RelId(0), ColumnId(1))],
        );
        assert_ne!(fingerprint(&grouped), fingerprint(&g));
    }

    #[test]
    fn adjacent_strings_cannot_alias() {
        let a = {
            let mut h = Fnv2::new();
            h.str("ab");
            h.str("c");
            h.finish()
        };
        let b = {
            let mut h = Fnv2::new();
            h.str("a");
            h.str("bc");
            h.finish()
        };
        assert_ne!(a, b);
    }
}
