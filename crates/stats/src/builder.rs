//! Building statistics by scanning stored tables.

use crate::column_stats::{ColumnStats, TableStats};
use crate::histogram::Histogram;
use hfqo_catalog::{ColumnId, ColumnStatsMeta};
use hfqo_storage::{Database, Table};
use std::collections::HashMap;

/// Default histogram bucket count (PostgreSQL's
/// `default_statistics_target` is 100; we match it).
pub const DEFAULT_BUCKETS: usize = 100;

/// Default most-common-values list length.
pub const DEFAULT_MCVS: usize = 16;

/// Scans one table and builds statistics for every column.
pub fn build_table_stats(table: &Table, buckets: usize, mcv_k: usize) -> TableStats {
    let rows = table.row_count();
    let schema = table.schema();
    let mut columns = Vec::with_capacity(schema.arity());
    for c in 0..schema.arity() {
        let col = table
            .column(ColumnId(c as u32))
            .expect("column within arity");
        let mut proxies: Vec<f64> = Vec::with_capacity(rows);
        let mut nulls = 0usize;
        // Exact frequency map on proxy bits: fine at the experiment scales
        // (≤ a few million rows) and exact ndv beats sketches for tests.
        let mut freq: HashMap<u64, (f64, usize)> = HashMap::new();
        for r in 0..rows {
            let v = col.get(r);
            match v.numeric_proxy() {
                Some(p) => {
                    proxies.push(p);
                    let e = freq.entry(p.to_bits()).or_insert((p, 0));
                    e.1 += 1;
                }
                None => nulls += 1,
            }
        }
        let meta = if proxies.is_empty() {
            ColumnStatsMeta {
                ndv: 0.0,
                min: 0.0,
                max: 0.0,
                null_frac: if rows > 0 { 1.0 } else { 0.0 },
            }
        } else {
            let min = proxies.iter().copied().fold(f64::INFINITY, f64::min);
            let max = proxies.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            ColumnStatsMeta {
                ndv: freq.len() as f64,
                min,
                max,
                null_frac: nulls as f64 / rows.max(1) as f64,
            }
        };
        // MCVs: the top-k values that each cover more than an average
        // value would (PostgreSQL's rule of thumb).
        let mut entries: Vec<(f64, usize)> = freq.into_values().collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.total_cmp(&b.0)));
        let avg_count = if meta.ndv > 0.0 {
            proxies.len() as f64 / meta.ndv
        } else {
            0.0
        };
        let mcvs: Vec<(f64, f64)> = entries
            .iter()
            .take(mcv_k)
            .filter(|(_, count)| (*count as f64) > avg_count)
            .map(|(p, count)| (*p, *count as f64 / rows.max(1) as f64))
            .collect();
        let histogram = Histogram::build(proxies, buckets);
        columns.push(ColumnStats {
            meta,
            histogram,
            mcvs,
        });
    }
    TableStats {
        row_count: rows as f64,
        row_width: hfqo_catalog::stats::estimated_row_width(schema),
        columns,
    }
}

/// Builds statistics for every table of a database, producing the
/// [`StatsCatalog`](crate::StatsCatalog) the estimators consume.
pub fn build_database_stats(db: &Database) -> crate::cardinality::StatsCatalog {
    let tables = db
        .catalog()
        .tables()
        .map(|(id, _)| {
            let table = db.table(id).expect("table exists for catalog id");
            build_table_stats(table, DEFAULT_BUCKETS, DEFAULT_MCVS)
        })
        .collect();
    crate::cardinality::StatsCatalog::new(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Catalog, Column, ColumnType, TableSchema};
    use hfqo_storage::Value;

    fn table_with(values: Vec<Value>) -> Table {
        let schema = TableSchema::new("t", vec![Column::nullable("v", ColumnType::Int)]);
        let mut t = Table::new(schema);
        for v in values {
            t.append_row(&[v]).unwrap();
        }
        t
    }

    #[test]
    fn basic_stats() {
        let t = table_with((0..100).map(Value::Int).collect());
        let s = build_table_stats(&t, 10, 4);
        assert_eq!(s.row_count, 100.0);
        let c = &s.columns[0];
        assert_eq!(c.meta.ndv, 100.0);
        assert_eq!(c.meta.min, 0.0);
        assert_eq!(c.meta.max, 99.0);
        assert_eq!(c.meta.null_frac, 0.0);
        assert!(c.histogram.is_some());
        // Uniform data: no value qualifies as "most common".
        assert!(c.mcvs.is_empty());
    }

    #[test]
    fn null_fraction_counted() {
        let mut vals: Vec<Value> = (0..80).map(Value::Int).collect();
        vals.extend(std::iter::repeat_n(Value::Null, 20));
        let t = table_with(vals);
        let s = build_table_stats(&t, 10, 4);
        assert!((s.columns[0].meta.null_frac - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mcvs_capture_skew() {
        let mut vals = vec![Value::Int(7); 500];
        vals.extend((0..100).map(Value::Int));
        let t = table_with(vals);
        let s = build_table_stats(&t, 10, 4);
        let c = &s.columns[0];
        assert_eq!(c.mcvs.first().map(|(v, _)| *v), Some(7.0));
        let f = c.mcvs[0].1;
        assert!((f - 500.0 / 600.0).abs() < 0.01, "got {f}");
    }

    #[test]
    fn empty_table_stats() {
        let t = table_with(vec![]);
        let s = build_table_stats(&t, 10, 4);
        assert_eq!(s.row_count, 0.0);
        assert_eq!(s.columns[0].meta.ndv, 0.0);
        assert!(s.columns[0].histogram.is_none());
    }

    #[test]
    fn all_null_column() {
        let t = table_with(vec![Value::Null, Value::Null]);
        let s = build_table_stats(&t, 10, 4);
        assert_eq!(s.columns[0].meta.null_frac, 1.0);
        assert_eq!(s.columns[0].meta.ndv, 0.0);
    }

    #[test]
    fn database_stats_cover_all_tables() {
        let mut cat = Catalog::new();
        let a = cat
            .add_table(TableSchema::new(
                "a",
                vec![Column::new("x", ColumnType::Int)],
            ))
            .unwrap();
        let b = cat
            .add_table(TableSchema::new(
                "b",
                vec![Column::new("y", ColumnType::Int)],
            ))
            .unwrap();
        let mut db = Database::new(cat);
        for i in 0..10 {
            db.table_mut(a)
                .unwrap()
                .append_row(&[Value::Int(i)])
                .unwrap();
        }
        for i in 0..5 {
            db.table_mut(b)
                .unwrap()
                .append_row(&[Value::Int(i)])
                .unwrap();
        }
        let sc = build_database_stats(&db);
        assert_eq!(sc.table(a).row_count, 10.0);
        assert_eq!(sc.table(b).row_count, 5.0);
    }
}
