//! Per-column and per-table statistics.

use crate::histogram::Histogram;
use hfqo_catalog::{ColumnStatsMeta, PAGE_SIZE_BYTES};

/// Full statistics for one column: summary metadata, an equi-depth
/// histogram, and a most-common-values list.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Summary (ndv, min, max, null fraction).
    pub meta: ColumnStatsMeta,
    /// Histogram over non-null numeric proxies; `None` for empty columns.
    pub histogram: Option<Histogram>,
    /// Most common values as `(proxy, fraction_of_all_rows)`, descending
    /// by fraction.
    pub mcvs: Vec<(f64, f64)>,
}

impl ColumnStats {
    /// Statistics for a column with no data.
    pub fn empty() -> Self {
        Self {
            meta: ColumnStatsMeta::unknown(),
            histogram: None,
            mcvs: Vec::new(),
        }
    }

    /// Total row fraction covered by the MCV list.
    pub fn mcv_mass(&self) -> f64 {
        self.mcvs.iter().map(|(_, f)| f).sum()
    }

    /// The MCV fraction for `proxy`, if it is a most-common value.
    pub fn mcv_frac(&self, proxy: f64) -> Option<f64> {
        self.mcvs.iter().find(|(v, _)| *v == proxy).map(|(_, f)| *f)
    }
}

/// Full statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Number of rows.
    pub row_count: f64,
    /// Estimated bytes per row.
    pub row_width: f64,
    /// Per-column statistics, indexed by column position.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Number of 8 KiB pages (at least 1).
    pub fn pages(&self) -> f64 {
        ((self.row_count * self.row_width) / PAGE_SIZE_BYTES)
            .ceil()
            .max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcv_lookup() {
        let stats = ColumnStats {
            meta: ColumnStatsMeta {
                ndv: 100.0,
                min: 0.0,
                max: 99.0,
                null_frac: 0.0,
            },
            histogram: None,
            mcvs: vec![(1.0, 0.4), (2.0, 0.1)],
        };
        assert_eq!(stats.mcv_frac(1.0), Some(0.4));
        assert_eq!(stats.mcv_frac(3.0), None);
        assert!((stats.mcv_mass() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pages_scale_with_rows() {
        let t = TableStats {
            row_count: 100_000.0,
            row_width: 40.0,
            columns: vec![],
        };
        assert!((t.pages() - (100_000.0f64 * 40.0 / 8192.0).ceil()).abs() < 1e-9);
        let empty = TableStats {
            row_count: 0.0,
            row_width: 40.0,
            columns: vec![],
        };
        assert_eq!(empty.pages(), 1.0);
    }

    #[test]
    fn empty_column_stats() {
        let c = ColumnStats::empty();
        assert!(c.histogram.is_none());
        assert_eq!(c.mcv_mass(), 0.0);
    }
}
