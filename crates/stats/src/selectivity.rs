//! Selection selectivity estimation.

use crate::cardinality::StatsCatalog;
use hfqo_query::{ParamVector, QueryGraph, Selection};
use hfqo_sql::CompareOp;

/// Fallback equality selectivity when no statistics exist (PostgreSQL uses
/// 0.005 for `eqsel` defaults).
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.005;

/// Fallback range selectivity when no statistics exist (PostgreSQL's
/// `DEFAULT_INEQ_SEL` is 1/3).
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Minimum selectivity returned, to keep cost estimates positive.
const MIN_SEL: f64 = 1e-9;

/// Estimates the fraction of a relation's rows satisfying `sel`.
pub fn selection_selectivity(stats: &StatsCatalog, graph: &QueryGraph, sel: &Selection) -> f64 {
    let table = graph.relation(sel.column.rel).table;
    let tstats = stats.table(table);
    let Some(col) = tstats.columns.get(sel.column.column.index()) else {
        return default_for(sel.op);
    };
    if col.meta.ndv <= 0.0 {
        // No non-null data: nothing matches a non-null comparison.
        return MIN_SEL;
    }
    let proxy = sel.value.numeric_proxy();
    let non_null = 1.0 - col.meta.null_frac;
    let sel_frac = match sel.op {
        CompareOp::Eq => eq_fraction(col, proxy),
        CompareOp::Neq => (1.0 - eq_fraction(col, proxy)).max(0.0),
        CompareOp::Lt => range_fraction(col, None, Some(proxy)),
        CompareOp::Le => range_fraction(col, None, Some(proxy)) + eq_fraction(col, proxy),
        CompareOp::Gt => range_fraction(col, Some(proxy), None) - eq_fraction(col, proxy),
        CompareOp::Ge => range_fraction(col, Some(proxy), None),
    };
    (sel_frac.clamp(0.0, 1.0) * non_null).max(MIN_SEL)
}

/// Estimates every selection slot's selectivity, in stored (slot)
/// order: the per-parameter signature the serving layer's template
/// cache records at planning time and compares on every probe.
pub fn selection_selectivities(stats: &StatsCatalog, graph: &QueryGraph) -> Vec<f64> {
    graph
        .selections()
        .iter()
        .map(|sel| selection_selectivity(stats, graph, sel))
        .collect()
}

/// Estimates the selectivity signature a *different* parameter vector
/// would have in `graph`'s template: slot `i`'s column and operator
/// come from the graph, the literal from `params`. This is the
/// "(template, params) → selectivity" lookup — it scores a parameter
/// vector against a template without rebuilding the bound graph.
///
/// # Panics
///
/// Panics if `params` has a different slot count than the graph's
/// selection list (the vector belongs to another template).
pub fn param_selectivities(
    stats: &StatsCatalog,
    graph: &QueryGraph,
    params: &ParamVector,
) -> Vec<f64> {
    assert_eq!(
        params.len(),
        graph.selections().len(),
        "parameter vector has {} slots but the template has {}",
        params.len(),
        graph.selections().len()
    );
    graph
        .selections()
        .iter()
        .zip(params.params())
        .map(|(slot, value)| {
            let sel = Selection {
                column: slot.column,
                op: slot.op,
                value: value.clone(),
            };
            selection_selectivity(stats, graph, &sel)
        })
        .collect()
}

/// Fraction of non-null rows equal to `proxy`.
fn eq_fraction(col: &crate::ColumnStats, proxy: f64) -> f64 {
    if let Some(f) = col.mcv_frac(proxy) {
        // MCV fractions are of *all* rows; convert to non-null fraction.
        let non_null = 1.0 - col.meta.null_frac;
        if non_null > 0.0 {
            return f / non_null;
        }
        return f;
    }
    // Uniformity over the non-MCV remainder.
    let mcv_mass = col.mcv_mass();
    let remaining_ndv = (col.meta.ndv - col.mcvs.len() as f64).max(1.0);
    // Out-of-range constants match nothing.
    if proxy < col.meta.min || proxy > col.meta.max {
        return 0.0;
    }
    ((1.0 - mcv_mass) / remaining_ndv).clamp(0.0, 1.0)
}

/// Fraction of non-null rows strictly inside the range (exclusive of the
/// endpoints' own mass; `Le`/`Ge` add the equality mass back).
fn range_fraction(col: &crate::ColumnStats, lo: Option<f64>, hi: Option<f64>) -> f64 {
    match &col.histogram {
        Some(h) => h.frac_between(lo, hi),
        None => DEFAULT_RANGE_SELECTIVITY,
    }
}

fn default_for(op: CompareOp) -> f64 {
    match op {
        CompareOp::Eq => DEFAULT_EQ_SELECTIVITY,
        CompareOp::Neq => 1.0 - DEFAULT_EQ_SELECTIVITY,
        _ => DEFAULT_RANGE_SELECTIVITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_table_stats;
    use crate::cardinality::StatsCatalog;
    use hfqo_catalog::{Column, ColumnId, ColumnType, TableId, TableSchema};
    use hfqo_query::{BoundColumn, Lit, QueryGraph, RelId, Relation};
    use hfqo_storage::{Table, Value};

    fn setup() -> (StatsCatalog, QueryGraph) {
        let schema = TableSchema::new("t", vec![Column::new("v", ColumnType::Int)]);
        let mut table = Table::new(schema);
        for i in 0..1000 {
            table.append_row(&[Value::Int(i % 100)]).unwrap();
        }
        let stats = StatsCatalog::new(vec![build_table_stats(&table, 50, 8)]);
        let graph = QueryGraph::new(
            vec![Relation {
                table: TableId(0),
                alias: "t".into(),
            }],
            vec![],
            vec![],
            vec![],
            vec![],
        );
        (stats, graph)
    }

    fn sel(op: CompareOp, v: i64) -> Selection {
        Selection {
            column: BoundColumn::new(RelId(0), ColumnId(0)),
            op,
            value: Lit::Int(v),
        }
    }

    #[test]
    fn equality_uses_ndv() {
        let (stats, graph) = setup();
        let s = selection_selectivity(&stats, &graph, &sel(CompareOp::Eq, 42));
        assert!((s - 0.01).abs() < 0.005, "got {s}");
    }

    #[test]
    fn range_uses_histogram() {
        let (stats, graph) = setup();
        let s = selection_selectivity(&stats, &graph, &sel(CompareOp::Lt, 50));
        assert!((s - 0.5).abs() < 0.05, "got {s}");
        let s = selection_selectivity(&stats, &graph, &sel(CompareOp::Ge, 90));
        assert!((s - 0.1).abs() < 0.05, "got {s}");
    }

    #[test]
    fn out_of_range_equality_is_tiny() {
        let (stats, graph) = setup();
        let s = selection_selectivity(&stats, &graph, &sel(CompareOp::Eq, 5000));
        assert!(s <= 1e-6, "got {s}");
    }

    #[test]
    fn neq_complements_eq() {
        let (stats, graph) = setup();
        let eq = selection_selectivity(&stats, &graph, &sel(CompareOp::Eq, 42));
        let neq = selection_selectivity(&stats, &graph, &sel(CompareOp::Neq, 42));
        assert!((eq + neq - 1.0).abs() < 0.01, "eq={eq} neq={neq}");
    }

    #[test]
    fn le_at_max_is_everything() {
        let (stats, graph) = setup();
        let s = selection_selectivity(&stats, &graph, &sel(CompareOp::Le, 99));
        assert!(s > 0.95, "got {s}");
    }

    /// Rebinds the graph's single selection slot to `v`.
    fn with_value(graph: &QueryGraph, op: CompareOp, v: i64) -> QueryGraph {
        QueryGraph::new(
            graph.relations().to_vec(),
            graph.joins().to_vec(),
            vec![sel(op, v)],
            graph.aggregates().to_vec(),
            graph.group_by().to_vec(),
        )
    }

    #[test]
    fn selectivities_follow_slot_order() {
        let (stats, graph) = setup();
        let bound = with_value(&graph, CompareOp::Lt, 50);
        let sels = selection_selectivities(&stats, &bound);
        assert_eq!(sels.len(), 1);
        assert_eq!(
            sels[0],
            selection_selectivity(&stats, &bound, &bound.selections()[0])
        );
        let empty = selection_selectivities(&stats, &graph);
        assert!(empty.is_empty(), "no slots, no signature");
    }

    /// The param-vector lookup must score exactly as if the literals
    /// were bound into the graph — it is the same estimator, addressed
    /// by (template, params) instead of a rebuilt graph.
    #[test]
    fn param_selectivities_match_rebound_graph() {
        let (stats, graph) = setup();
        let bound = with_value(&graph, CompareOp::Lt, 50);
        let other = hfqo_query::ParamVector::new(vec![Lit::Int(90)]);
        let via_params = param_selectivities(&stats, &bound, &other);
        let rebound = with_value(&graph, CompareOp::Lt, 90);
        assert_eq!(via_params, selection_selectivities(&stats, &rebound));
        // Different constants on a skewed histogram really do move the
        // signature — this is what the re-plan band compares.
        assert_ne!(via_params, selection_selectivities(&stats, &bound));
    }

    #[test]
    #[should_panic(expected = "parameter vector has 0 slots")]
    fn param_vector_slot_count_mismatch_panics() {
        let (stats, graph) = setup();
        let bound = with_value(&graph, CompareOp::Eq, 5);
        let _ = param_selectivities(&stats, &bound, &hfqo_query::ParamVector::default());
    }
}
