//! # hfqo-stats
//!
//! Statistics and cardinality estimation: equi-depth histograms,
//! most-common-value lists, per-column summaries, and the selectivity /
//! cardinality estimators the traditional optimizer and the cost model use.
//!
//! The estimator deliberately mirrors the classic System-R / PostgreSQL
//! design, *including its weaknesses*: attribute-value independence across
//! predicates and the `1/max(ndv)` equijoin rule. The synthetic workloads
//! contain correlated columns precisely so these assumptions produce the
//! systematic cost-model errors the paper's §4 and §5.2 discuss. "True"
//! cardinalities are exposed through the [`CardinalitySource`] trait, whose
//! execution-backed implementation lives in `hfqo-exec`.

pub mod builder;
pub mod cardinality;
pub mod column_stats;
pub mod drift;
pub mod histogram;
pub mod selectivity;

pub use builder::{build_database_stats, build_table_stats};
pub use cardinality::{CardinalitySource, EstimatedCardinality, StatsCatalog};
pub use column_stats::{ColumnStats, TableStats};
pub use drift::{column_shift, stats_drift, DriftMagnitude, TableDrift};
pub use histogram::Histogram;
pub use selectivity::{
    param_selectivities, selection_selectivities, selection_selectivity, DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
};
