//! Drift magnitude between two statistics snapshots.
//!
//! The drift harness (`hfqo_workload::drift`) mutates a live database
//! and rebuilds statistics mid-traffic. This module quantifies *how
//! far* the world moved between two [`StatsCatalog`] snapshots of the
//! same catalog, so each shock→recovery report can attach a magnitude
//! to the shock instead of a bare label. The metric is deliberately
//! coarse — a scalar per table built from the row-count ratio, the
//! per-column distinct-count ratio, the null-fraction delta, and the
//! value-range midpoint shift — because its only consumers are reports
//! and assertions of the form "this shock visibly moved the stats".
//!
//! Everything here is a pure function of the two snapshots: no clocks,
//! no randomness, bit-reproducible for fixed inputs.

use crate::cardinality::StatsCatalog;
use crate::column_stats::ColumnStats;
use hfqo_catalog::TableId;

/// Drift of one table between two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDrift {
    /// Which table.
    pub table: TableId,
    /// `new_rows / old_rows`; zero-row sides are clamped so the ratio
    /// stays finite.
    pub row_ratio: f64,
    /// Largest per-column shift — see [`column_shift`].
    pub max_column_shift: f64,
}

impl TableDrift {
    /// The table's combined shift: `|log2 row_ratio|` plus the largest
    /// column shift.
    pub fn shift(&self) -> f64 {
        self.row_ratio.log2().abs() + self.max_column_shift
    }
}

/// Drift between two statistics snapshots of the same catalog, one
/// entry per table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DriftMagnitude {
    /// Per-table drift, indexed like the catalogs.
    pub per_table: Vec<TableDrift>,
}

impl DriftMagnitude {
    /// The largest per-table shift (0 for empty catalogs).
    pub fn max_shift(&self) -> f64 {
        self.per_table
            .iter()
            .map(TableDrift::shift)
            .fold(0.0, f64::max)
    }

    /// Whether any table moved beyond floating-point noise.
    pub fn is_significant(&self) -> bool {
        self.max_shift() > 1e-9
    }
}

fn clamped(x: f64) -> f64 {
    if x.is_finite() {
        x.max(1e-9)
    } else {
        1e-9
    }
}

/// A scalar shift between two column snapshots:
/// `|log2(ndv ratio)| + |Δ null fraction| + |Δ range midpoint| / old width`.
/// Zero when nothing moved; grows smoothly with distribution changes.
pub fn column_shift(old: &ColumnStats, new: &ColumnStats) -> f64 {
    let ndv = (clamped(new.meta.ndv) / clamped(old.meta.ndv)).log2().abs();
    let nulls = (new.meta.null_frac - old.meta.null_frac).abs();
    let old_mid = (old.meta.min + old.meta.max) / 2.0;
    let new_mid = (new.meta.min + new.meta.max) / 2.0;
    let width = clamped((old.meta.max - old.meta.min).abs().max(1.0));
    let mid = if old_mid.is_finite() && new_mid.is_finite() {
        (new_mid - old_mid).abs() / width
    } else {
        0.0
    };
    ndv + nulls + mid
}

/// Computes the drift between two snapshots of the same catalog.
///
/// Panics if the snapshots cover different table counts — drift is only
/// meaningful across rebuilds of one catalog, and arities diverging
/// means the caller compared snapshots of different databases.
pub fn stats_drift(old: &StatsCatalog, new: &StatsCatalog) -> DriftMagnitude {
    assert_eq!(
        old.table_count(),
        new.table_count(),
        "drift requires snapshots of the same catalog"
    );
    let per_table = (0..old.table_count())
        .map(|i| {
            let id = TableId(i as u32);
            let (o, n) = (old.table(id), new.table(id));
            let row_ratio = clamped(n.row_count) / clamped(o.row_count);
            let max_column_shift = o
                .columns
                .iter()
                .zip(&n.columns)
                .map(|(oc, nc)| column_shift(oc, nc))
                .fold(0.0, f64::max);
            TableDrift {
                table: id,
                row_ratio,
                max_column_shift,
            }
        })
        .collect();
    DriftMagnitude { per_table }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column_stats::TableStats;
    use hfqo_catalog::ColumnStatsMeta;

    fn col(ndv: f64, min: f64, max: f64, null_frac: f64) -> ColumnStats {
        ColumnStats {
            meta: ColumnStatsMeta {
                ndv,
                min,
                max,
                null_frac,
            },
            histogram: None,
            mcvs: Vec::new(),
        }
    }

    fn catalog(rows: f64, c: ColumnStats) -> StatsCatalog {
        StatsCatalog::new(vec![TableStats {
            row_count: rows,
            row_width: 12.0,
            columns: vec![c],
        }])
    }

    #[test]
    fn identical_snapshots_have_zero_drift() {
        let a = catalog(100.0, col(10.0, 0.0, 99.0, 0.1));
        let d = stats_drift(&a, &a.clone());
        assert_eq!(d.per_table.len(), 1);
        assert!(!d.is_significant());
        assert_eq!(d.max_shift(), 0.0);
    }

    #[test]
    fn growth_and_skew_show_up() {
        let old = catalog(100.0, col(10.0, 0.0, 99.0, 0.0));
        let grown = catalog(400.0, col(10.0, 0.0, 99.0, 0.0));
        let d = stats_drift(&old, &grown);
        assert!(d.is_significant());
        assert!((d.per_table[0].row_ratio - 4.0).abs() < 1e-12);
        assert!((d.max_shift() - 2.0).abs() < 1e-12, "log2(4) = 2");
        // A pure distribution shift (same rows, fewer distincts, moved
        // range) registers through the column term.
        let skewed = catalog(100.0, col(2.0, 0.0, 9.0, 0.0));
        let s = stats_drift(&old, &skewed);
        assert!((s.per_table[0].row_ratio - 1.0).abs() < 1e-12);
        assert!(
            s.per_table[0].max_column_shift > 2.0,
            "ndv fell 5x + midpoint moved"
        );
    }

    #[test]
    fn empty_tables_stay_finite() {
        let old = catalog(0.0, ColumnStats::empty());
        let new = catalog(50.0, col(5.0, 0.0, 4.0, 0.0));
        let d = stats_drift(&old, &new);
        assert!(d.max_shift().is_finite());
        assert!(d.is_significant());
    }

    #[test]
    #[should_panic(expected = "same catalog")]
    fn mismatched_catalogs_rejected() {
        let a = catalog(1.0, ColumnStats::empty());
        let b = StatsCatalog::new(vec![]);
        let _ = stats_drift(&a, &b);
    }
}
