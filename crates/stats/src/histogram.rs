//! Equi-depth histograms over numeric proxies.

/// An equi-depth histogram stored as `(bound, cumulative_fraction)` pairs.
///
/// `cum[i]` is (approximately) the fraction of non-null rows with value
/// `<= bounds[i]`. Heavily skewed columns collapse several equi-depth
/// boundaries onto one value; the cumulative fractions keep the mass
/// attribution correct in that case, unlike a bounds-only representation.
///
/// Histograms operate on the *numeric proxy* of values (see
/// `Value::numeric_proxy`), so one implementation serves ints, floats, and
/// text.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    cums: Vec<f64>,
}

impl Histogram {
    /// Builds an equi-depth histogram with up to `buckets` buckets from a
    /// slice of non-null proxies. Returns `None` for empty input.
    pub fn build(mut values: Vec<f64>, buckets: usize) -> Option<Self> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = values.len();
        let buckets = buckets.min(n);
        let mut bounds = vec![values[0]];
        let mut cums = vec![0.0f64];
        for b in 1..=buckets {
            let (idx, cum) = if b == buckets {
                (n - 1, 1.0)
            } else {
                ((b * n) / buckets, b as f64 / buckets as f64)
            };
            let v = values[idx.min(n - 1)];
            let last = bounds.len() - 1;
            if v > bounds[last] {
                bounds.push(v);
                cums.push(cum);
            } else {
                // Boundary collapsed onto an earlier value: attribute the
                // additional mass to that value.
                cums[last] = cums[last].max(cum);
            }
        }
        if bounds.len() == 1 {
            // Degenerate single-value column: one zero-width bucket
            // carrying all the mass.
            bounds.push(bounds[0]);
            cums = vec![0.0, 1.0];
        }
        Some(Self { bounds, cums })
    }

    /// Number of buckets (segments between stored bounds).
    pub fn bucket_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Smallest observed value.
    pub fn min(&self) -> f64 {
        self.bounds[0]
    }

    /// Largest observed value.
    pub fn max(&self) -> f64 {
        *self.bounds.last().expect("at least two bounds")
    }

    /// Estimated fraction of non-null rows with value strictly `< x`.
    pub fn frac_below(&self, x: f64) -> f64 {
        if x <= self.min() {
            return 0.0;
        }
        if x > self.max() {
            return 1.0;
        }
        if self.max() == self.min() {
            // Zero-width histogram: all mass at one point, below x only if
            // x exceeds it (handled above), so here x equals the point.
            return 0.0;
        }
        // Find the segment with bounds[i] < x <= bounds[i+1].
        let i = match self
            .bounds
            .binary_search_by(|b| b.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(pos) => pos.saturating_sub(1),
            Err(pos) => pos.saturating_sub(1),
        };
        let i = i.min(self.bounds.len() - 2);
        let (b_lo, b_hi) = (self.bounds[i], self.bounds[i + 1]);
        let (c_lo, c_hi) = (self.cums[i], self.cums[i + 1]);
        let within = if b_hi > b_lo {
            ((x - b_lo) / (b_hi - b_lo)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        (c_lo + within * (c_hi - c_lo)).clamp(0.0, 1.0)
    }

    /// Estimated fraction of rows in the (optional) bounds, treated
    /// continuously (a point carries no interpolated mass).
    pub fn frac_between(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let below_hi = hi.map_or(1.0, |h| self.frac_below(h));
        let below_lo = lo.map_or(0.0, |l| self.frac_below(l));
        (below_hi - below_lo).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_hist() -> Histogram {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        Histogram::build(values, 10).expect("non-empty")
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(Histogram::build(vec![], 10).is_none());
        assert!(Histogram::build(vec![1.0], 0).is_none());
    }

    #[test]
    fn uniform_fractions_are_linear() {
        let h = uniform_hist();
        assert_eq!(h.bucket_count(), 10);
        assert!((h.frac_below(500.0) - 0.5).abs() < 0.02);
        assert!((h.frac_below(250.0) - 0.25).abs() < 0.02);
        assert_eq!(h.frac_below(-10.0), 0.0);
        assert_eq!(h.frac_below(5000.0), 1.0);
    }

    #[test]
    fn range_fraction() {
        let h = uniform_hist();
        let f = h.frac_between(Some(100.0), Some(300.0));
        assert!((f - 0.2).abs() < 0.03, "got {f}");
        assert_eq!(h.frac_between(None, None), 1.0);
    }

    #[test]
    fn single_value_column() {
        let h = Histogram::build(vec![7.0; 50], 10).expect("non-empty");
        assert_eq!(h.min(), 7.0);
        assert_eq!(h.max(), 7.0);
        assert_eq!(h.frac_below(7.0), 0.0);
        assert_eq!(h.frac_below(7.1), 1.0);
    }

    #[test]
    fn skewed_data_buckets_follow_depth() {
        // 90% zeros, 10% spread out over 1..=100.
        let mut values = vec![0.0; 900];
        values.extend((1..=100).map(|i| i as f64));
        let h = Histogram::build(values, 10).expect("non-empty");
        let f = h.frac_below(1.0);
        assert!((0.85..=0.95).contains(&f), "got {f}");
        // Halfway through the tail.
        let f50 = h.frac_below(50.0);
        assert!((0.9..=0.99).contains(&f50), "got {f50}");
    }

    #[test]
    fn fewer_values_than_buckets() {
        let h = Histogram::build(vec![1.0, 2.0, 3.0], 10).expect("non-empty");
        assert!(h.bucket_count() <= 3);
        assert!(h.frac_below(2.5) > 0.3);
    }

    #[test]
    fn monotone_in_x() {
        let mut values = vec![0.0; 500];
        values.extend((0..500).map(|i| (i % 37) as f64));
        let h = Histogram::build(values, 16).expect("non-empty");
        let mut prev = 0.0;
        for i in -5..45 {
            let f = h.frac_below(i as f64);
            assert!(f >= prev - 1e-12, "non-monotone at {i}: {f} < {prev}");
            prev = f;
        }
    }
}
