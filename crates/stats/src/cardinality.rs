//! Cardinality estimation.

use crate::column_stats::TableStats;
use crate::selectivity::{selection_selectivity, DEFAULT_RANGE_SELECTIVITY};
use hfqo_catalog::TableId;
use hfqo_query::{QueryGraph, RelId, RelSet};
use hfqo_sql::CompareOp;

/// Statistics for every table of a database, indexed by [`TableId`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsCatalog {
    tables: Vec<TableStats>,
}

impl StatsCatalog {
    /// Wraps per-table statistics (position `i` belongs to `TableId(i)`).
    pub fn new(tables: Vec<TableStats>) -> Self {
        Self { tables }
    }

    /// Statistics for one table.
    ///
    /// Panics if the id is out of range; stats catalogs are always built
    /// from the same catalog the ids come from.
    pub fn table(&self, id: TableId) -> &TableStats {
        &self.tables[id.index()]
    }

    /// Number of tables covered.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

/// A source of cardinalities for plan costing.
///
/// Two implementations exist: [`EstimatedCardinality`] (histograms +
/// independence assumptions — what the traditional optimizer uses) and the
/// execution-backed `TrueCardinality` oracle in `hfqo-exec` (what the
/// latency model uses). The cost model is generic over this trait, which is
/// exactly the lever the paper's §5.2 pulls: the same cost formulas driven
/// by estimated vs true cardinalities produce the cost-vs-latency gap.
pub trait CardinalitySource {
    /// Rows produced by scanning `rel` and applying all its selections.
    fn base_rows(&self, graph: &QueryGraph, rel: RelId) -> f64;

    /// Rows produced by joining the relations of `set` (with all
    /// selections on those relations and all join edges within `set`
    /// applied).
    fn set_rows(&self, graph: &QueryGraph, set: RelSet) -> f64;
}

/// Histogram-based estimator with the classic independence assumptions.
#[derive(Debug, Clone, Copy)]
pub struct EstimatedCardinality<'a> {
    stats: &'a StatsCatalog,
}

impl<'a> EstimatedCardinality<'a> {
    /// Creates an estimator over a stats catalog.
    pub fn new(stats: &'a StatsCatalog) -> Self {
        Self { stats }
    }

    /// The underlying stats catalog.
    pub fn stats(&self) -> &'a StatsCatalog {
        self.stats
    }

    /// Estimated selectivity of join edge `edge_idx` of `graph`.
    ///
    /// Equijoins use the textbook `1 / max(ndv_left, ndv_right)`; other
    /// comparison joins fall back to the default inequality selectivity.
    pub fn edge_selectivity(&self, graph: &QueryGraph, edge_idx: usize) -> f64 {
        let edge = &graph.joins()[edge_idx];
        match edge.op {
            CompareOp::Eq => {
                let lt = graph.relation(edge.left.rel).table;
                let rt = graph.relation(edge.right.rel).table;
                let l_ndv = self
                    .stats
                    .table(lt)
                    .columns
                    .get(edge.left.column.index())
                    .map_or(1.0, |c| c.meta.ndv);
                let r_ndv = self
                    .stats
                    .table(rt)
                    .columns
                    .get(edge.right.column.index())
                    .map_or(1.0, |c| c.meta.ndv);
                1.0 / l_ndv.max(r_ndv).max(1.0)
            }
            CompareOp::Neq => 1.0,
            _ => DEFAULT_RANGE_SELECTIVITY,
        }
    }

    /// Estimated selectivity product of all selections on `rel`.
    pub fn selection_selectivity_of(&self, graph: &QueryGraph, rel: RelId) -> f64 {
        graph
            .selections_on(rel)
            .map(|i| selection_selectivity(self.stats, graph, &graph.selections()[i]))
            .product()
    }
}

impl CardinalitySource for EstimatedCardinality<'_> {
    fn base_rows(&self, graph: &QueryGraph, rel: RelId) -> f64 {
        let table = graph.relation(rel).table;
        let rows = self.stats.table(table).row_count;
        (rows * self.selection_selectivity_of(graph, rel)).max(1.0)
    }

    fn set_rows(&self, graph: &QueryGraph, set: RelSet) -> f64 {
        let mut rows = 1.0;
        for rel in set.iter() {
            rows *= self.base_rows(graph, rel);
        }
        for (i, edge) in graph.joins().iter().enumerate() {
            if set.contains(edge.left.rel) && set.contains(edge.right.rel) {
                rows *= self.edge_selectivity(graph, i);
            }
        }
        rows.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column_stats::{ColumnStats, TableStats};
    use hfqo_catalog::{ColumnId, ColumnStatsMeta};
    use hfqo_query::{BoundColumn, JoinEdge, Lit, Relation, Selection};

    fn col(ndv: f64, min: f64, max: f64) -> ColumnStats {
        ColumnStats {
            meta: ColumnStatsMeta {
                ndv,
                min,
                max,
                null_frac: 0.0,
            },
            histogram: crate::Histogram::build(
                (0..100)
                    .map(|i| min + (max - min) * (i as f64) / 99.0)
                    .collect(),
                10,
            ),
            mcvs: vec![],
        }
    }

    /// Two tables: `a` (1000 rows, pk 0..1000) and `b` (10000 rows, fk into a).
    fn setup() -> (StatsCatalog, QueryGraph) {
        let a = TableStats {
            row_count: 1000.0,
            row_width: 16.0,
            columns: vec![col(1000.0, 0.0, 999.0), col(10.0, 0.0, 9.0)],
        };
        let b = TableStats {
            row_count: 10000.0,
            row_width: 16.0,
            columns: vec![col(1000.0, 0.0, 999.0), col(100.0, 0.0, 99.0)],
        };
        let stats = StatsCatalog::new(vec![a, b]);
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: TableId(0),
                    alias: "a".into(),
                },
                Relation {
                    table: TableId(1),
                    alias: "b".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(0)),
            }],
            vec![Selection {
                column: BoundColumn::new(RelId(1), ColumnId(1)),
                op: CompareOp::Eq,
                value: Lit::Int(5),
            }],
            vec![],
            vec![],
        );
        (stats, graph)
    }

    #[test]
    fn base_rows_apply_selections() {
        let (stats, graph) = setup();
        let est = EstimatedCardinality::new(&stats);
        assert_eq!(est.base_rows(&graph, RelId(0)), 1000.0);
        // b has an equality selection on a 100-ndv column: ~1% of 10000.
        let b = est.base_rows(&graph, RelId(1));
        assert!((b - 100.0).abs() < 20.0, "got {b}");
    }

    #[test]
    fn equijoin_uses_max_ndv() {
        let (stats, graph) = setup();
        let est = EstimatedCardinality::new(&stats);
        let sel = est.edge_selectivity(&graph, 0);
        assert!((sel - 0.001).abs() < 1e-9);
    }

    #[test]
    fn set_rows_combine_edges_and_selections() {
        let (stats, graph) = setup();
        let est = EstimatedCardinality::new(&stats);
        let both = est.set_rows(&graph, RelSet::full(2));
        // 1000 * ~100 * 0.001 = ~100.
        assert!((both - 100.0).abs() < 30.0, "got {both}");
        // Single-relation sets match base_rows.
        assert_eq!(
            est.set_rows(&graph, RelSet::single(RelId(0))),
            est.base_rows(&graph, RelId(0))
        );
    }

    #[test]
    fn cross_join_has_no_edge_reduction() {
        let (stats, mut graph) = setup();
        // Remove the join edge: set_rows becomes the full product.
        graph = QueryGraph::new(
            graph.relations().to_vec(),
            vec![],
            graph.selections().to_vec(),
            vec![],
            vec![],
        );
        let est = EstimatedCardinality::new(&stats);
        let both = est.set_rows(&graph, RelSet::full(2));
        assert!(both > 50_000.0, "got {both}");
    }

    #[test]
    fn rows_never_below_one() {
        let (stats, graph) = setup();
        let est = EstimatedCardinality::new(&stats);
        assert!(est.set_rows(&graph, RelSet::full(2)) >= 1.0);
    }
}
