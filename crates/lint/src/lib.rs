//! # hfqo-lint
//!
//! In-repo workspace lint enforcing the concurrency-correctness rules
//! that `hfqo_sync` and the PR 6 determinism contract rely on. Pure
//! std — the container is offline, so no `syn`; scanning is
//! line/token-level over a string-literal- and comment-aware stripped
//! view of each source file.
//!
//! Rules:
//!
//! * **L1** — no `std::sync::{Mutex, RwLock, Condvar}` (or their guard
//!   types) outside `crates/sync`. Everything else must go through the
//!   instrumented `hfqo_sync` wrappers so debug builds get lock-order
//!   checking and unified poison handling. Not allowlistable.
//! * **L2** — no `Instant::now` / `SystemTime` in deterministic paths.
//!   `ExecStats.work` and replayed rewards must never depend on the
//!   host; wall-clock is allowlisted only at bench / serving-latency /
//!   loader sites, each with a justification.
//! * **L3** — every atomic `Ordering::` stronger than `Relaxed`
//!   (`Acquire`, `Release`, `AcqRel`, `SeqCst`) carries a
//!   `// ordering:` justification comment on the same line or in the
//!   contiguous comment block immediately above. Allowlistable
//!   per-file, but annotation is the norm.
//! * **L4** — no `thread::sleep` in tests (flake source: sleeps encode
//!   a hoped-for interleaving instead of forcing one). Not
//!   allowlistable.
//! * **L5** — no `.unwrap()` on lock/channel results in non-test
//!   library code (panic messages without context; locks must use the
//!   site-labelled `hfqo_sync` path, channels an `expect` that names
//!   the protocol). Not allowlistable.
//!
//! The scanner is a deliberate approximation: it sees one line at a
//! time after stripping, so a call chain split across lines (e.g.
//! `.lock()\n.unwrap()`) can escape L5. That trade (tiny false-negative
//! window, zero dependencies, trivially auditable scanner) is the right
//! one for a repo-specific gate; rustc and clippy still backstop the
//! rest.

use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules. `Display` gives the short code used in reports and
/// in `allow.list`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Raw `std::sync` lock types outside `crates/sync`.
    L1,
    /// Wall-clock (`Instant::now` / `SystemTime`) in deterministic paths.
    L2,
    /// Non-`Relaxed` atomic ordering without a `// ordering:` comment.
    L3,
    /// `thread::sleep` in test code.
    L4,
    /// `.unwrap()` on lock/channel results in non-test library code.
    L5,
}

impl Rule {
    /// Rules whose violations may be suppressed via `allow.list`.
    /// L1/L4/L5 violations must be fixed, never allowlisted.
    pub fn allowlistable(self) -> bool {
        matches!(self, Rule::L2 | Rule::L3)
    }

    fn parse(s: &str) -> Option<Rule> {
        match s {
            "L1" => Some(Rule::L1),
            "L2" => Some(Rule::L2),
            "L3" => Some(Rule::L3),
            "L4" => Some(Rule::L4),
            "L5" => Some(Rule::L5),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One rule violation at a source location. `path` is workspace-root
/// relative with forward slashes.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    pub path: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Returns `source` with comments, string literals, and char literals
/// blanked to spaces, preserving line structure (same number of lines,
/// same column positions). Rule matching runs on this view so that a
/// pattern inside a doc comment or a panic message never trips a rule.
/// Handles line/block (nested) comments, plain and raw (`r#"…"#`)
/// strings, byte strings, char literals, and lifetimes.
pub fn strip_source(source: &str) -> String {
    enum St {
        Code,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut st = St::Code;
    let mut i = 0;
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match st {
            St::Code => {
                if c == '/' && next == Some('/') {
                    while i < chars.len() && chars[i] != '\n' {
                        out.push(' ');
                        i += 1;
                    }
                } else if c == '/' && next == Some('*') {
                    st = St::Block(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    out.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && (i == 0 || !is_ident(chars[i - 1]))
                    && raw_string_hashes(&chars, i).is_some()
                {
                    let (skip, hashes) = raw_string_hashes(&chars, i).unwrap();
                    for _ in 0..skip {
                        out.push(' ');
                    }
                    out.push('"');
                    st = St::RawStr(hashes);
                    i += skip as usize + 1;
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal closes within
                    // a couple of chars ('x', '\n', '\u{1F600}'); a
                    // lifetime never has a closing quote before a
                    // non-ident char.
                    if next == Some('\\') {
                        out.push('\'');
                        i += 1;
                        while i < chars.len() && chars[i] != '\'' {
                            out.push(' ');
                            i += if chars[i] == '\\' && i + 1 < chars.len() {
                                out.push(' ');
                                2
                            } else {
                                1
                            };
                        }
                        if i < chars.len() {
                            out.push('\'');
                            i += 1;
                        }
                    } else if chars.get(i + 2) == Some(&'\'') {
                        out.push_str("' '");
                        i += 3;
                    } else {
                        out.push('\''); // lifetime quote; harmless
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            St::Block(depth) => {
                if c == '/' && next == Some('*') {
                    st = St::Block(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push(' ');
                    i += 1;
                    if i < chars.len() {
                        out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                } else if c == '"' {
                    out.push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    st = St::Code;
                    i += 1 + hashes as usize;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    out
}

/// If `chars[i..]` starts a raw (byte) string (`r"`, `r#"`, `br##"` …),
/// returns `(chars before the opening quote, hash count)`.
fn raw_string_hashes(chars: &[char], i: usize) -> Option<(u32, u32)> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(((j - i) as u32, hashes))
    } else {
        None
    }
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Does `needle` occur in `haystack` as a full word (no identifier
/// characters adjacent on either side)?
fn word_match(haystack: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = !haystack[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Per-line flags for `#[cfg(test)]` regions, by brace matching on the
/// stripped source. Attribute and `mod tests {` lines count as inside.
fn test_regions(stripped_lines: &[&str]) -> Vec<bool> {
    let n = stripped_lines.len();
    let mut in_test = vec![false; n];
    let mut i = 0;
    while i < n {
        if !stripped_lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < n {
            for c in stripped_lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            in_test[j] = true;
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

const L1_BANNED: &[&str] = &[
    "Mutex",
    "MutexGuard",
    "RwLock",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Condvar",
];

const L3_STRONG: &[&str] = &["Acquire", "Release", "AcqRel", "SeqCst"];

const L5_PATTERNS: &[&str] = &[
    ".lock().unwrap()",
    ".read().unwrap()",
    ".write().unwrap()",
    ".recv().unwrap()",
    ".try_recv().unwrap()",
];

/// Scans one file. `rel_path` is the workspace-root-relative path
/// (forward slashes) used both for reporting and for path-based rule
/// scoping (`crates/sync` L1 exemption, `tests/`/`benches/`
/// classification).
pub fn scan_file(rel_path: &str, source: &str) -> Vec<Violation> {
    let stripped = strip_source(source);
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let raw_lines: Vec<&str> = source.lines().collect();
    let in_test = test_regions(&stripped_lines);

    let in_sync_crate = rel_path.starts_with("crates/sync/");
    let is_test_file = rel_path.split('/').any(|c| c == "tests");
    let is_bench_file = rel_path.split('/').any(|c| c == "benches");

    let mut out = Vec::new();
    let mut push = |rule: Rule, line: usize, message: String| {
        out.push(Violation {
            rule,
            path: rel_path.to_string(),
            line,
            message,
        });
    };

    for (idx, line) in stripped_lines.iter().enumerate() {
        let lineno = idx + 1;
        let in_test_code = is_test_file || in_test.get(idx).copied().unwrap_or(false);

        // L1: raw std::sync lock types outside crates/sync.
        if !in_sync_crate && line.contains("std::sync") {
            for name in L1_BANNED {
                if word_match(line, name) {
                    push(
                        Rule::L1,
                        lineno,
                        format!(
                            "raw std::sync::{name} outside crates/sync; use the \
                             instrumented hfqo_sync::{name} instead"
                        ),
                    );
                    break;
                }
            }
        }

        // L2: wall-clock reads. Allowlistable for bench/latency/loader
        // sites; everything on a deterministic path must be fixed.
        for pat in ["Instant::now", "SystemTime"] {
            if line.contains(pat) {
                push(
                    Rule::L2,
                    lineno,
                    format!(
                        "wall-clock ({pat}) — deterministic paths must not read the \
                         host clock; allowlist with a justification if this is a \
                         bench/latency/loader site"
                    ),
                );
                break;
            }
        }

        // L3: non-Relaxed atomic orderings need a `// ordering:`
        // justification on the same or preceding raw line.
        let mut search = 0;
        while let Some(pos) = line[search..].find("Ordering::") {
            let at = search + pos + "Ordering::".len();
            let variant: String = line[at..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if L3_STRONG.contains(&variant.as_str()) {
                let same = raw_lines
                    .get(idx)
                    .is_some_and(|l| l.contains("// ordering:"));
                // A multi-line justification counts: walk the contiguous
                // `//` comment block immediately above the site.
                let mut above = false;
                let mut j = idx;
                while j > 0 {
                    j -= 1;
                    let l = raw_lines[j].trim_start();
                    if !l.starts_with("//") {
                        break;
                    }
                    if l.contains("// ordering:") {
                        above = true;
                        break;
                    }
                }
                if !same && !above {
                    push(
                        Rule::L3,
                        lineno,
                        format!(
                            "Ordering::{variant} without a `// ordering:` justification \
                             comment on this line or in the comment block above"
                        ),
                    );
                }
            }
            search = at;
        }

        // L4: sleeps in tests hide interleavings behind timers.
        if in_test_code && line.contains("thread::sleep") {
            push(
                Rule::L4,
                lineno,
                "thread::sleep in test code — force the interleaving with a \
                 barrier/counter/condvar instead of sleeping and hoping"
                    .to_string(),
            );
        }

        // L5: context-free unwraps on lock/channel results in library
        // code. Locks go through hfqo_sync (site-labelled panic);
        // channels use an expect that names the protocol.
        if !in_test_code && !is_bench_file {
            let hit = L5_PATTERNS.iter().find(|p| line.contains(*p)).copied();
            let send_unwrap = line.contains(".send(") && line.contains(".unwrap()");
            if let Some(pat) = hit {
                push(
                    Rule::L5,
                    lineno,
                    format!("`{pat}` in library code — name the lock site or protocol"),
                );
            } else if send_unwrap {
                push(
                    Rule::L5,
                    lineno,
                    "`.send(..).unwrap()` in library code — use an expect naming the \
                     channel protocol"
                        .to_string(),
                );
            }
        }
    }
    out
}

/// Directories never scanned: build output, vendored shims (external
/// API stubs, not part of the concurrency surface), VCS metadata, and
/// the lint's own deliberately-violating fixtures.
fn skip_dir(rel: &str, name: &str) -> bool {
    matches!(name, "target" | "vendor" | ".git" | ".github") || rel == "crates/lint/tests/fixtures"
}

/// Recursively scans every `.rs` file under `root`, returning all
/// violations sorted by path and line.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(root, "", &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        out.extend(scan_file(&rel, &source));
    }
    Ok(out)
}

fn collect_rs_files(root: &Path, rel: &str, out: &mut Vec<String>) -> std::io::Result<()> {
    let dir = if rel.is_empty() {
        root.to_path_buf()
    } else {
        root.join(rel)
    };
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let child_rel = if rel.is_empty() {
            name.to_string()
        } else {
            format!("{rel}/{name}")
        };
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if !skip_dir(&child_rel, &name) {
                collect_rs_files(root, &child_rel, out)?;
            }
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(child_rel);
        }
    }
    Ok(())
}

/// One `allow.list` entry: `<rule> <path> -- <justification>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: Rule,
    pub path: String,
    pub justification: String,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} -- {}", self.rule, self.path, self.justification)
    }
}

/// Parses `allow.list`. Each non-comment line is
/// `<rule> <path> -- <justification>`; the justification is mandatory,
/// and entries for non-allowlistable rules (L1/L4/L5) are a parse
/// error — those violations must be fixed in code.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let (head, justification) = line
            .split_once(" -- ")
            .ok_or_else(|| format!("allow.list:{lineno}: missing ` -- <justification>`"))?;
        let justification = justification.trim();
        if justification.is_empty() {
            return Err(format!("allow.list:{lineno}: empty justification"));
        }
        let mut parts = head.split_whitespace();
        let rule = parts
            .next()
            .and_then(Rule::parse)
            .ok_or_else(|| format!("allow.list:{lineno}: expected a rule (L1..L5)"))?;
        let path = parts
            .next()
            .ok_or_else(|| format!("allow.list:{lineno}: expected a file path"))?
            .to_string();
        if parts.next().is_some() {
            return Err(format!(
                "allow.list:{lineno}: unexpected trailing tokens before ` -- `"
            ));
        }
        if !rule.allowlistable() {
            return Err(format!(
                "allow.list:{lineno}: rule {rule} is not allowlistable — fix the code"
            ));
        }
        entries.push(AllowEntry {
            rule,
            path,
            justification: justification.to_string(),
        });
    }
    Ok(entries)
}

/// Splits `violations` into (still-active, suppressed) under
/// `allowlist`, and returns any **stale** entries — allowlist lines
/// that matched no violation. Stale entries are an error at the
/// call site: an allowlist that silently outlives its violations stops
/// being a record of anything.
pub fn apply_allowlist(
    violations: Vec<Violation>,
    allowlist: &[AllowEntry],
) -> (Vec<Violation>, Vec<Violation>, Vec<AllowEntry>) {
    let mut used = vec![false; allowlist.len()];
    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    for v in violations {
        match allowlist
            .iter()
            .position(|e| e.rule == v.rule && e.path == v.path)
        {
            Some(i) => {
                used[i] = true;
                suppressed.push(v);
            }
            None => active.push(v),
        }
    }
    let stale = allowlist
        .iter()
        .zip(&used)
        .filter(|&(_, u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    (active, suppressed, stale)
}

/// Runs the full lint over the workspace at `root` using the checked-in
/// `crates/lint/allow.list` (absent file = empty allowlist). Returns
/// `Ok((active, suppressed, stale))`.
#[allow(clippy::type_complexity)]
pub fn run(root: &Path) -> Result<(Vec<Violation>, Vec<Violation>, Vec<AllowEntry>), String> {
    let violations = scan_workspace(root).map_err(|e| format!("scan failed: {e}"))?;
    let allow_path: PathBuf = root.join("crates/lint/allow.list");
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("cannot read {}: {e}", allow_path.display())),
    };
    Ok(apply_allowlist(violations, &allowlist))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_blanks_strings_and_comments() {
        let src = "let a = \"std::sync::Mutex\"; // std::sync::Mutex\nlet b = 1;\n";
        let stripped = strip_source(src);
        assert!(!stripped.contains("Mutex"));
        assert_eq!(stripped.lines().count(), src.lines().count());
    }

    #[test]
    fn stripper_handles_raw_strings_and_chars() {
        let src = "let a = r#\"Instant::now\"#; let c = '\\n'; let l: &'static str = x;\nInstant::now();\n";
        let stripped = strip_source(src);
        let lines: Vec<&str> = stripped.lines().collect();
        assert!(!lines[0].contains("Instant::now"));
        assert!(lines[1].contains("Instant::now"));
    }

    #[test]
    fn stripper_handles_nested_block_comments() {
        let src = "/* outer /* SystemTime */ still comment */ let x = 1;\n";
        let stripped = strip_source(src);
        assert!(!stripped.contains("SystemTime"));
        assert!(stripped.contains("let x = 1;"));
    }

    #[test]
    fn l1_exempts_sync_crate_and_matches_word_boundaries() {
        let src = "use std::sync::{Mutex, Condvar};\n";
        assert_eq!(scan_file("crates/serve/src/cache.rs", src).len(), 1);
        assert!(scan_file("crates/sync/src/check.rs", src).is_empty());
        // `AtomicMutexish` is not a banned word.
        let ok = "use std::sync::atomic::AtomicU64;\n";
        assert!(scan_file("crates/serve/src/cache.rs", ok).is_empty());
    }

    #[test]
    fn l3_accepts_same_or_preceding_line_justification() {
        let bare = "x.load(Ordering::Acquire);\n";
        let same = "x.load(Ordering::Acquire); // ordering: pairs with store\n";
        let prev = "// ordering: pairs with store\nx.load(Ordering::Acquire);\n";
        let block = "// ordering: pairs with the Release\n// store in publish().\nx.load(Ordering::Acquire);\n";
        let gap = "// ordering: too far away\nlet y = 1;\nx.load(Ordering::Acquire);\n";
        let relaxed = "x.load(Ordering::Relaxed);\n";
        assert_eq!(scan_file("crates/x/src/a.rs", bare).len(), 1);
        assert!(scan_file("crates/x/src/a.rs", same).is_empty());
        assert!(scan_file("crates/x/src/a.rs", prev).is_empty());
        assert!(scan_file("crates/x/src/a.rs", block).is_empty());
        assert_eq!(scan_file("crates/x/src/a.rs", gap).len(), 1);
        assert!(scan_file("crates/x/src/a.rs", relaxed).is_empty());
    }

    #[test]
    fn l4_fires_only_in_test_code() {
        let src = "std::thread::sleep(d);\n";
        assert_eq!(scan_file("tests/online.rs", src).len(), 1);
        assert!(scan_file("crates/serve/src/online.rs", src).is_empty());
        let cfg_test = "#[cfg(test)]\nmod tests {\n  fn f() { std::thread::sleep(d); }\n}\n";
        assert_eq!(
            scan_file("crates/serve/src/online.rs", cfg_test)
                .iter()
                .filter(|v| v.rule == Rule::L4)
                .count(),
            1
        );
    }

    #[test]
    fn l5_skips_tests_and_benches() {
        let src = "let g = self.inner.lock().unwrap();\n";
        assert_eq!(scan_file("crates/x/src/a.rs", src).len(), 1);
        assert!(scan_file("tests/a.rs", src).is_empty());
        assert!(scan_file("crates/bench/benches/serving.rs", src).is_empty());
    }

    #[test]
    fn allowlist_rejects_unallowlistable_rules_and_blank_justifications() {
        assert!(parse_allowlist("L2 a.rs -- bench timing is the product\n").is_ok());
        assert!(parse_allowlist("L1 a.rs -- please\n").is_err());
        assert!(parse_allowlist("L4 a.rs -- please\n").is_err());
        assert!(parse_allowlist("L5 a.rs -- please\n").is_err());
        assert!(parse_allowlist("L2 a.rs\n").is_err());
        assert!(parse_allowlist("L2 a.rs -- \n").is_err());
    }

    #[test]
    fn apply_allowlist_reports_stale_entries() {
        let v = vec![Violation {
            rule: Rule::L2,
            path: "a.rs".into(),
            line: 1,
            message: String::new(),
        }];
        let allow = vec![
            AllowEntry {
                rule: Rule::L2,
                path: "a.rs".into(),
                justification: "x".into(),
            },
            AllowEntry {
                rule: Rule::L2,
                path: "gone.rs".into(),
                justification: "x".into(),
            },
        ];
        let (active, suppressed, stale) = apply_allowlist(v, &allow);
        assert!(active.is_empty());
        assert_eq!(suppressed.len(), 1);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "gone.rs");
    }
}
