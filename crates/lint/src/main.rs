//! Workspace lint gate: `cargo run -p hfqo_lint [workspace-root]`.
//! Exits non-zero on any active violation, stale allowlist entry, or
//! malformed allowlist. See the library docs for the rules (L1–L5).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::current_dir().expect("hfqo_lint: cannot determine cwd"));

    let (active, suppressed, stale) = match hfqo_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hfqo_lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    for v in &active {
        eprintln!("{v}");
    }
    for e in &stale {
        eprintln!("allow.list: stale entry `{e}` — no matching violation remains; delete the line");
    }

    if active.is_empty() && stale.is_empty() {
        println!(
            "hfqo_lint: clean ({} violation(s) allowlisted with justification)",
            suppressed.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "hfqo_lint: {} active violation(s), {} stale allowlist entr(ies)",
            active.len(),
            stale.len()
        );
        ExitCode::FAILURE
    }
}
