// Fixture: violates L1 — raw std::sync lock type outside crates/sync.
use std::sync::Mutex;

pub struct Holder {
    slot: Mutex<u64>,
}

pub fn bump(h: &Holder) {
    *h.slot.lock().expect("slot") += 1;
}
