// Fixture: violates L4 — thread::sleep inside a cfg(test) region.
// The same call in the library function above it must NOT fire.
use std::time::Duration;

pub fn backoff(d: Duration) {
    std::thread::sleep(d); // library code: allowed
}

#[cfg(test)]
mod tests {
    #[test]
    fn hopes_the_race_resolves() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}
