// Fixture: violates L2 — wall-clock reads on a library path.
use std::time::Instant;

pub fn reward() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}
