// Fixture: violates L5 — context-free unwraps on lock and channel
// results in library code.
use std::sync::mpsc::Receiver;
use std::sync::Mutex as StdMutex;

pub fn drain(m: &StdMutex<Vec<u64>>, rx: &Receiver<u64>) -> u64 {
    let mut buf = m.lock().unwrap();
    buf.push(rx.recv().unwrap());
    buf.len() as u64
}
