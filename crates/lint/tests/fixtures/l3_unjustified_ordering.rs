// Fixture: violates L3 — a non-Relaxed ordering with no `// ordering:`
// justification, next to a justified one and a Relaxed one (neither of
// which may fire).
use std::sync::atomic::{AtomicU64, Ordering};

pub fn observe(flag: &AtomicU64) -> (u64, u64, u64) {
    let bare = flag.load(Ordering::Acquire);
    // ordering: Acquire — pairs with the publisher's Release store.
    let justified = flag.load(Ordering::Acquire);
    let relaxed = flag.load(Ordering::Relaxed);
    (bare, justified, relaxed)
}
