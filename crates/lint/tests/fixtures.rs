//! Self-tests for the lint: every rule must fire on its known-violating
//! fixture (and only where expected), the allowlist must round-trip —
//! including the stale-entry error path — and the live workspace must
//! scan clean, making `cargo test` itself a lint gate.
//!
//! Fixture sources live under `tests/fixtures/` (excluded from the
//! workspace scan precisely because they violate on purpose); the
//! classification path each fixture is scanned *as* is chosen per test,
//! since path-based scoping (tests/, benches/, crates/sync/) is part of
//! what is under test.

use hfqo_lint::{parse_allowlist, scan_file, scan_workspace, Rule};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn count(rel_path: &str, source: &str, rule: Rule) -> usize {
    scan_file(rel_path, source)
        .iter()
        .filter(|v| v.rule == rule)
        .count()
}

#[test]
fn l1_fires_on_raw_std_sync_outside_crates_sync() {
    let src = fixture("l1_std_sync.rs");
    assert_eq!(count("crates/serve/src/x.rs", &src, Rule::L1), 1);
    // The same source inside crates/sync is exempt.
    assert_eq!(count("crates/sync/src/x.rs", &src, Rule::L1), 0);
}

#[test]
fn l2_fires_on_wall_clock() {
    let src = fixture("l2_wall_clock.rs");
    assert_eq!(count("crates/rejoin/src/x.rs", &src, Rule::L2), 1);
}

#[test]
fn l3_fires_only_on_the_unjustified_strong_ordering() {
    let src = fixture("l3_unjustified_ordering.rs");
    let hits: Vec<_> = scan_file("crates/exec/src/x.rs", &src)
        .into_iter()
        .filter(|v| v.rule == Rule::L3)
        .collect();
    // One bare Acquire fires; the justified Acquire and the Relaxed
    // load do not.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("Acquire"));
}

#[test]
fn l4_fires_in_test_code_only() {
    let src = fixture("l4_sleep_in_test.rs");
    // Scanned as a library file: only the cfg(test) sleep fires, not
    // the library backoff helper.
    let hits: Vec<_> = scan_file("crates/serve/src/x.rs", &src)
        .into_iter()
        .filter(|v| v.rule == Rule::L4)
        .collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    // Scanned as an integration-test file: both sleeps are test code.
    assert_eq!(count("tests/x.rs", &src, Rule::L4), 2);
}

#[test]
fn l5_fires_on_lock_and_channel_unwraps_in_library_code() {
    let src = fixture("l5_lock_unwrap.rs");
    assert_eq!(count("crates/serve/src/x.rs", &src, Rule::L5), 2);
    // Test and bench code are out of scope for L5.
    assert_eq!(count("tests/x.rs", &src, Rule::L5), 0);
    assert_eq!(count("crates/bench/benches/x.rs", &src, Rule::L5), 0);
}

#[test]
fn allowlist_roundtrip_suppresses_and_reports_stale() {
    let src = fixture("l2_wall_clock.rs");
    let violations = scan_file("crates/rejoin/src/x.rs", &src);
    let allow = parse_allowlist(
        "# comment\n\
         L2 crates/rejoin/src/x.rs -- latency metric only\n\
         L2 crates/never/was/violating.rs -- stale on purpose\n",
    )
    .expect("well-formed allowlist parses");
    let (active, suppressed, stale) = hfqo_lint::apply_allowlist(violations, &allow);
    assert!(active.is_empty(), "{active:?}");
    assert_eq!(suppressed.len(), 1);
    assert_eq!(stale.len(), 1, "the unmatched entry must surface as stale");
    assert_eq!(stale[0].path, "crates/never/was/violating.rs");
}

#[test]
fn workspace_scan_skips_the_fixture_tree() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = scan_workspace(&root).expect("workspace scans");
    assert!(
        violations
            .iter()
            .all(|v| !v.path.contains("crates/lint/tests/fixtures")),
        "fixtures must never leak into the workspace scan"
    );
}

/// The whole point: the live workspace is lint-clean under the
/// checked-in allowlist, so `cargo test` fails alongside CI when a
/// violation or a stale allowlist entry appears.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (active, _suppressed, stale) = hfqo_lint::run(&root).expect("lint runs");
    assert!(active.is_empty(), "active lint violations: {active:#?}");
    assert!(stale.is_empty(), "stale allowlist entries: {stale:#?}");
}
