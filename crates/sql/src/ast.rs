//! Unbound SQL AST.

use std::fmt;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            Self::Eq => "=",
            Self::Neq => "<>",
            Self::Lt => "<",
            Self::Le => "<=",
            Self::Gt => ">",
            Self::Ge => ">=",
        }
    }

    /// The operator with its operands flipped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> Self {
        match self {
            Self::Eq => Self::Eq,
            Self::Neq => Self::Neq,
            Self::Lt => Self::Gt,
            Self::Le => Self::Ge,
            Self::Gt => Self::Lt,
            Self::Ge => Self::Le,
        }
    }
}

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Int(v) => write!(f, "{v}"),
            Self::Float(v) => write!(f, "{v}"),
            Self::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// An unbound `alias.column` reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnName {
    /// Table alias (or table name when no alias was given).
    pub qualifier: String,
    /// Column name.
    pub column: String,
}

impl fmt::Display for ColumnName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.qualifier, self.column)
    }
}

/// Aggregate functions in the select list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(col)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
}

impl AggFunc {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            Self::Count => "COUNT",
            Self::Sum => "SUM",
            Self::Min => "MIN",
            Self::Max => "MAX",
            Self::Avg => "AVG",
        }
    }
}

/// One item in the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A plain column.
    Column(ColumnName),
    /// An aggregate over a column, or `COUNT(*)` when `column` is `None`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Aggregated column; `None` only for `COUNT(*)`.
        column: Option<ColumnName>,
    },
}

/// A table in the FROM clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Catalog table name.
    pub table: String,
    /// Alias; defaults to the table name.
    pub alias: String,
}

/// One conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum WherePred {
    /// `a.x <op> b.y` — a join predicate once bound.
    ColCol {
        /// Left column.
        left: ColumnName,
        /// Operator.
        op: CompareOp,
        /// Right column.
        right: ColumnName,
    },
    /// `a.x <op> literal` — a selection predicate.
    ColLit {
        /// Column.
        left: ColumnName,
        /// Operator.
        op: CompareOp,
        /// Literal.
        lit: Literal,
    },
}

/// A parsed (unbound) SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// FROM clause, in declaration order.
    pub from: Vec<TableRef>,
    /// WHERE conjuncts.
    pub predicates: Vec<WherePred>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnName>,
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.items.is_empty() {
            write!(f, "*")?;
        } else {
            for (i, item) in self.items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match item {
                    SelectItem::Wildcard => write!(f, "*")?,
                    SelectItem::Column(c) => write!(f, "{c}")?,
                    SelectItem::Aggregate { func, column } => match column {
                        Some(c) => write!(f, "{}({c})", func.sql())?,
                        None => write!(f, "{}(*)", func.sql())?,
                    },
                }
            }
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if t.alias == t.table {
                write!(f, "{}", t.table)?;
            } else {
                write!(f, "{} AS {}", t.table, t.alias)?;
            }
        }
        if !self.predicates.is_empty() {
            write!(f, " WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                match p {
                    WherePred::ColCol { left, op, right } => {
                        write!(f, "{left} {} {right}", op.sql())?
                    }
                    WherePred::ColLit { left, op, lit } => write!(f, "{left} {} {lit}", op.sql())?,
                }
            }
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, c) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        write!(f, ";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_flip() {
        assert_eq!(CompareOp::Lt.flipped(), CompareOp::Gt);
        assert_eq!(CompareOp::Ge.flipped(), CompareOp::Le);
        assert_eq!(CompareOp::Eq.flipped(), CompareOp::Eq);
    }

    #[test]
    fn literal_display_escapes() {
        assert_eq!(Literal::Str("it's".into()).to_string(), "'it''s'");
        assert_eq!(Literal::Int(-3).to_string(), "-3");
    }

    #[test]
    fn stmt_display() {
        let stmt = SelectStmt {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                column: None,
            }],
            from: vec![
                TableRef {
                    table: "title".into(),
                    alias: "t".into(),
                },
                TableRef {
                    table: "cast_info".into(),
                    alias: "cast_info".into(),
                },
            ],
            predicates: vec![
                WherePred::ColCol {
                    left: ColumnName {
                        qualifier: "t".into(),
                        column: "id".into(),
                    },
                    op: CompareOp::Eq,
                    right: ColumnName {
                        qualifier: "cast_info".into(),
                        column: "movie_id".into(),
                    },
                },
                WherePred::ColLit {
                    left: ColumnName {
                        qualifier: "t".into(),
                        column: "year".into(),
                    },
                    op: CompareOp::Gt,
                    lit: Literal::Int(1990),
                },
            ],
            group_by: vec![],
        };
        assert_eq!(
            stmt.to_string(),
            "SELECT COUNT(*) FROM title AS t, cast_info \
             WHERE t.id = cast_info.movie_id AND t.year > 1990;"
        );
    }
}
