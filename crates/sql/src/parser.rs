//! Recursive-descent parser.

use crate::ast::{
    AggFunc, ColumnName, CompareOp, Literal, SelectItem, SelectStmt, TableRef, WherePred,
};
use crate::error::ParseError;
use crate::token::{tokenize, Token};

/// Parses one SELECT statement (with optional trailing `;`).
pub fn parse_select(input: &str) -> Result<SelectStmt, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select_stmt()?;
    p.accept(&Token::Semicolon);
    p.expect_end()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn accept(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token, what: &str) -> Result<(), ParseError> {
        if self.accept(tok) {
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(kw))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::Unexpected {
                expected: expected.to_string(),
                found: format!("{t:?}"),
            },
            None => ParseError::UnexpectedEnd(expected.to_string()),
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.unexpected("end of statement"))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(_)) => match self.bump() {
                Some(Token::Ident(s)) => Ok(s),
                _ => unreachable!("peeked Ident"),
            },
            _ => Err(self.unexpected(what)),
        }
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_keyword("SELECT")?;
        let items = self.select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.from_list()?;
        let predicates = if self.keyword("WHERE") {
            self.predicate_list()?
        } else {
            Vec::new()
        };
        let group_by = if self.keyword("GROUP") {
            self.expect_keyword("BY")?;
            self.column_list()?
        } else {
            Vec::new()
        };
        Ok(SelectStmt {
            items,
            from,
            predicates,
            group_by,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        let mut items = vec![self.select_item()?];
        while self.accept(&Token::Comma) {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.accept(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        if let Some(Token::Keyword(kw)) = self.peek() {
            let func = match kw.as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                "AVG" => Some(AggFunc::Avg),
                _ => None,
            };
            if let Some(func) = func {
                self.pos += 1;
                self.expect(&Token::LParen, "(")?;
                let column = if self.accept(&Token::Star) {
                    if func != AggFunc::Count {
                        return Err(ParseError::Unexpected {
                            expected: "a column argument".into(),
                            found: format!("{}(*)", func.sql()),
                        });
                    }
                    None
                } else {
                    Some(self.column_name()?)
                };
                self.expect(&Token::RParen, ")")?;
                return Ok(SelectItem::Aggregate { func, column });
            }
        }
        Ok(SelectItem::Column(self.column_name()?))
    }

    fn column_name(&mut self) -> Result<ColumnName, ParseError> {
        let qualifier = self.ident("a qualified column (alias.column)")?;
        self.expect(&Token::Dot, ".")?;
        let column = self.ident("a column name")?;
        Ok(ColumnName { qualifier, column })
    }

    fn column_list(&mut self) -> Result<Vec<ColumnName>, ParseError> {
        let mut cols = vec![self.column_name()?];
        while self.accept(&Token::Comma) {
            cols.push(self.column_name()?);
        }
        Ok(cols)
    }

    // `from_list` parses the FROM clause; the `from_*` naming lint does
    // not apply to this domain name.
    #[allow(clippy::wrong_self_convention)]
    fn from_list(&mut self) -> Result<Vec<TableRef>, ParseError> {
        let mut tables = vec![self.table_ref()?];
        while self.accept(&Token::Comma) {
            tables.push(self.table_ref()?);
        }
        Ok(tables)
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.ident("a table name")?;
        let alias = if self.keyword("AS") {
            self.ident("an alias")?
        } else if let Some(Token::Ident(_)) = self.peek() {
            // Implicit alias: `FROM title t`.
            self.ident("an alias")?
        } else {
            table.clone()
        };
        Ok(TableRef { table, alias })
    }

    fn predicate_list(&mut self) -> Result<Vec<WherePred>, ParseError> {
        let mut preds = vec![self.predicate()?];
        while self.keyword("AND") {
            preds.push(self.predicate()?);
        }
        Ok(preds)
    }

    fn predicate(&mut self) -> Result<WherePred, ParseError> {
        let left = self.column_name()?;
        let op = self.compare_op()?;
        match self.peek() {
            Some(Token::Int(_)) | Some(Token::Float(_)) | Some(Token::Str(_)) => {
                let lit = match self.bump() {
                    Some(Token::Int(v)) => Literal::Int(v),
                    Some(Token::Float(v)) => Literal::Float(v),
                    Some(Token::Str(s)) => Literal::Str(s),
                    _ => unreachable!("peeked literal"),
                };
                Ok(WherePred::ColLit { left, op, lit })
            }
            _ => {
                let right = self.column_name()?;
                Ok(WherePred::ColCol { left, op, right })
            }
        }
    }

    fn compare_op(&mut self) -> Result<CompareOp, ParseError> {
        let op = match self.peek() {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::Neq) => CompareOp::Neq,
            Some(Token::Lt) => CompareOp::Lt,
            Some(Token::Le) => CompareOp::Le,
            Some(Token::Gt) => CompareOp::Gt,
            Some(Token::Ge) => CompareOp::Ge,
            _ => return Err(self.unexpected("a comparison operator")),
        };
        self.pos += 1;
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let s = parse_select("SELECT * FROM t").unwrap();
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].alias, "t");
        assert!(s.predicates.is_empty());
    }

    #[test]
    fn parse_join_query() {
        let s = parse_select(
            "SELECT COUNT(*) FROM title AS t, cast_info ci \
             WHERE t.id = ci.movie_id AND t.production_year > 1990;",
        )
        .unwrap();
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[1].alias, "ci");
        assert_eq!(s.predicates.len(), 2);
        assert!(matches!(&s.predicates[0], WherePred::ColCol { .. }));
        assert!(matches!(
            &s.predicates[1],
            WherePred::ColLit {
                lit: Literal::Int(1990),
                ..
            }
        ));
    }

    #[test]
    fn parse_aggregates_and_group_by() {
        let s = parse_select(
            "SELECT MIN(t.year), COUNT(ci.id) FROM title t, cast_info ci \
             WHERE t.id = ci.movie_id GROUP BY t.kind_id",
        )
        .unwrap();
        assert_eq!(s.items.len(), 2);
        assert!(matches!(
            &s.items[0],
            SelectItem::Aggregate {
                func: AggFunc::Min,
                column: Some(_)
            }
        ));
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.group_by[0].column, "kind_id");
    }

    #[test]
    fn sum_star_rejected() {
        assert!(parse_select("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn string_predicates() {
        let s = parse_select("SELECT * FROM t WHERE t.note = 'actor'").unwrap();
        assert!(matches!(
            &s.predicates[0],
            WherePred::ColLit {
                lit: Literal::Str(v),
                ..
            } if v == "actor"
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_select("SELECT * FROM t WHERE t.a = 1 GROUP").is_err());
        assert!(parse_select("SELECT * FROM t extra.token").is_err());
    }

    #[test]
    fn missing_from_rejected() {
        let err = parse_select("SELECT *").unwrap_err();
        assert!(matches!(err, ParseError::UnexpectedEnd(_)));
    }

    #[test]
    fn display_roundtrip() {
        let sql = "SELECT COUNT(*) FROM title AS t, cast_info \
                   WHERE t.id = cast_info.movie_id AND t.year > 1990;";
        let s = parse_select(sql).unwrap();
        let printed = s.to_string();
        let reparsed = parse_select(&printed).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn all_operators_parse() {
        for op in ["=", "<>", "!=", "<", "<=", ">", ">="] {
            let sql = format!("SELECT * FROM t WHERE t.a {op} 5");
            assert!(parse_select(&sql).is_ok(), "op {op}");
        }
    }
}
