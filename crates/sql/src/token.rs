//! SQL lexer.

use crate::error::ParseError;

/// A lexical token. Keywords are recognised case-insensitively and carried
/// as upper-case `Keyword`s; identifiers preserve their original case.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Reserved word (upper-cased): SELECT, FROM, WHERE, AND, AS, GROUP,
    /// BY, COUNT, SUM, MIN, MAX, AVG.
    Keyword(String),
    /// Identifier (table, alias, or column name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "AS", "GROUP", "BY", "COUNT", "SUM", "MIN", "MAX", "AVG",
];

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(ParseError::UnexpectedChar('!', i));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token::Neq);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(Token::Str(s));
                i = next;
            }
            c if c.is_ascii_digit() || (c == '-' && starts_number(bytes, i)) => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::Ident(word.to_string()));
                }
            }
            other => return Err(ParseError::UnexpectedChar(other, i)),
        }
    }
    Ok(tokens)
}

fn starts_number(bytes: &[u8], i: usize) -> bool {
    bytes
        .get(i + 1)
        .is_some_and(|b| (*b as char).is_ascii_digit())
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize), ParseError> {
    let bytes = input.as_bytes();
    let mut s = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            // `''` escapes a single quote.
            if bytes.get(i + 1) == Some(&b'\'') {
                s.push('\'');
                i += 2;
            } else {
                return Ok((s, i + 1));
            }
        } else {
            // Push the whole UTF-8 character, not just the byte.
            let ch = input[i..]
                .chars()
                .next()
                .ok_or(ParseError::UnterminatedString(start))?;
            s.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(ParseError::UnterminatedString(start))
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize), ParseError> {
    let bytes = input.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
    }
    let mut is_float = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_digit() {
            i += 1;
        } else if c == '.' && !is_float && starts_number(bytes, i) {
            is_float = true;
            i += 1;
        } else {
            break;
        }
    }
    let text = &input[start..i];
    let tok = if is_float {
        Token::Float(
            text.parse()
                .map_err(|_| ParseError::BadNumber(text.to_string()))?,
        )
    } else {
        Token::Int(
            text.parse()
                .map_err(|_| ParseError::BadNumber(text.to_string()))?,
        )
    };
    Ok((tok, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let toks = tokenize("SELECT * FROM t WHERE a.x = 3;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Star,
                Token::Keyword("FROM".into()),
                Token::Ident("t".into()),
                Token::Keyword("WHERE".into()),
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("x".into()),
                Token::Eq,
                Token::Int(3),
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select From wHeRe").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("FROM".into()),
                Token::Keyword("WHERE".into()),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("< <= > >= = <> !=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Neq,
                Token::Neq
            ]
        );
    }

    #[test]
    fn numbers_and_negatives() {
        let toks = tokenize("42 -7 3.25 -0.5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Int(-7),
                Token::Float(3.25),
                Token::Float(-0.5)
            ]
        );
    }

    #[test]
    fn string_literals_with_escape() {
        let toks = tokenize("'hello' 'it''s'").unwrap();
        assert_eq!(
            toks,
            vec![Token::Str("hello".into()), Token::Str("it's".into())]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(
            tokenize("'oops"),
            Err(ParseError::UnterminatedString(0))
        ));
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(matches!(
            tokenize("SELECT #"),
            Err(ParseError::UnexpectedChar('#', _))
        ));
    }

    #[test]
    fn identifiers_preserve_case() {
        let toks = tokenize("Movie_Info mi2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("Movie_Info".into()),
                Token::Ident("mi2".into())
            ]
        );
    }
}
