//! # hfqo-sql
//!
//! A small SQL front-end: lexer, AST, and recursive-descent parser for the
//! subset the workloads use —
//!
//! ```sql
//! SELECT t.a, COUNT(*), MIN(s.b)
//! FROM title AS t, cast_info AS ci, ...
//! WHERE t.id = ci.movie_id AND t.production_year > 1990 AND ci.note = 'actor'
//! GROUP BY t.a;
//! ```
//!
//! The parser produces an *unbound* AST ([`ast::SelectStmt`]); name
//! resolution against a catalog happens in `hfqo-query`'s binder. Keeping
//! the front-end catalog-free lets the workload generators print SQL and
//! round-trip it through the parser in tests.

pub mod ast;
pub mod error;
pub mod parser;
pub mod token;

pub use ast::{AggFunc, CompareOp, Literal, SelectItem, SelectStmt, TableRef, WherePred};
pub use error::ParseError;
pub use parser::parse_select;
pub use token::{tokenize, Token};
