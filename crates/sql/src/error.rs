//! SQL parse errors.

use std::fmt;

/// Errors raised by the lexer and parser.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Character the lexer does not understand, with its byte offset.
    UnexpectedChar(char, usize),
    /// A string literal was not closed; offset of the opening quote.
    UnterminatedString(usize),
    /// A numeric literal failed to parse.
    BadNumber(String),
    /// The parser expected something else at token position.
    Unexpected {
        /// What the parser was looking for.
        expected: String,
        /// What it found (token debug or "end of input").
        found: String,
    },
    /// Input ended too early.
    UnexpectedEnd(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedChar(c, at) => write!(f, "unexpected character `{c}` at byte {at}"),
            Self::UnterminatedString(at) => {
                write!(f, "unterminated string literal starting at byte {at}")
            }
            Self::BadNumber(s) => write!(f, "malformed number `{s}`"),
            Self::Unexpected { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            Self::UnexpectedEnd(expected) => {
                write!(f, "unexpected end of input, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ParseError::Unexpected {
            expected: "FROM".into(),
            found: "WHERE".into(),
        };
        assert_eq!(e.to_string(), "expected FROM, found WHERE");
    }
}
