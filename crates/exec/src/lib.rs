//! # hfqo-exec
//!
//! A materialising (operator-at-a-time) execution engine for physical
//! plans: sequential and index scans, nested-loop / hash / merge joins,
//! and hash / sort aggregation — plus the two facilities the paper's
//! experiments need from an executor:
//!
//! * **Row budgets.** Every operator counts the work it performs against a
//!   budget; catastrophic plans (the cross-join orders an untrained agent
//!   emits) abort with [`ExecError::BudgetExceeded`] instead of running for
//!   hours. This is the mechanism behind reproducing the paper's footnote 2
//!   ("the initial query plans produced could not be executed in any
//!   reasonable amount of time").
//! * **A true-cardinality oracle.** [`TrueCardinality`] executes and
//!   memoises sub-join counts, implementing `hfqo_stats::CardinalitySource`
//!   so the cost model can be driven by *actual* intermediate sizes — the
//!   ingredient the analytic latency model needs to disagree with the
//!   estimate-driven cost model in a realistic way.

pub mod error;
pub mod executor;
pub mod ops;
pub mod row;
pub mod truecard;

pub use error::ExecError;
pub use executor::{execute, ExecConfig, ExecOutcome, ExecStats};
pub use row::{lit_to_value, Layout, Row};
pub use truecard::TrueCardinality;
