//! # hfqo-exec
//!
//! The execution engine: a **vectorized, pull-based operator pipeline**
//! over columnar batches, plus the original row-at-a-time engine kept as
//! a verification reference. The executor is the hot path of every
//! training episode (the paper's reward is observed execution behaviour),
//! so its throughput directly bounds the workload sizes the RL agent can
//! train on.
//!
//! ## Architecture
//!
//! ```text
//!  execute(db, graph, plan, config)              ── facade (executor.rs)
//!    └─ build_pipeline(node, required columns)   ── planner (operator.rs)
//!         ├─ ScanOp      (ops/scan.rs)   ─┐
//!         ├─ JoinOp      (ops/join.rs)    ├─ Operator: open / next_batch / close
//!         └─ AggOp       (ops/agg.rs)    ─┘
//!              ⇅ Batch (batch.rs): fixed-capacity column vectors
//! ```
//!
//! **Batch format** ([`batch`]). A [`Batch`] is up to
//! [`batch::BATCH_CAPACITY`] rows stored as one
//! [`hfqo_storage::ColumnVector`] per projected column (typed vectors
//! with validity bitmaps — ints and floats copy without materialising
//! [`hfqo_storage::Value`]s) plus an explicit row count, so zero-column
//! batches (pure `COUNT(*)` pipelines) still carry cardinality.
//!
//! **Operator protocol** ([`operator`]). [`Operator::open`] builds
//! blocking state (hash tables, merge sorts — charged against the
//! budget), [`Operator::next_batch`] pulls one output batch, and
//! [`Operator::close`] releases state. Scans stream from table columns;
//! hash and nested-loop joins materialise only their build/inner side
//! and stream the probe side; aggregation folds batches into group
//! accumulators.
//!
//! **Projection rules** ([`operator`]). Each node's output carries only
//! the columns *required above it*: the facade requires every column for
//! plain queries (so results are column-identical to the row engine),
//! only `GROUP BY` keys + aggregate inputs for aggregated queries, and
//! nothing at all for counting pipelines (the true-cardinality oracle).
//! Every join adds its condition columns to its children's requirement
//! and drops them again from its own output unless an ancestor needs
//! them. Selection columns are consumed inside the scan and never enter
//! the pipeline unless otherwise referenced.
//!
//! ## The two facilities the paper's experiments need
//!
//! * **Row budgets.** Every operator counts the work it performs against
//!   a budget; catastrophic plans (the cross-join orders an untrained
//!   agent emits) abort with [`ExecError::BudgetExceeded`] instead of
//!   running for hours. Budgets are enforced *per batch*, so a runaway
//!   pipeline stops within one batch of the limit, and charge totals are
//!   identical to the row engine's — reward shaping sees no difference
//!   from vectorization. This reproduces the paper's footnote 2 ("the
//!   initial query plans produced could not be executed in any
//!   reasonable amount of time").
//! * **A true-cardinality oracle.** [`TrueCardinality`] executes and
//!   memoises sub-join counts through zero-column counting pipelines,
//!   implementing `hfqo_stats::CardinalitySource` so the cost model can
//!   be driven by *actual* intermediate sizes — the ingredient the
//!   analytic latency model needs to disagree with the estimate-driven
//!   cost model in a realistic way.
//!
//! ## Intra-query parallelism
//!
//! [`parallel`] adds a **morsel-driven parallel evaluator**: when
//! [`ExecConfig::threads`] exceeds 1, the facade evaluates the plan
//! stage by stage with worker teams pulling fixed-size row ranges from
//! a shared atomic dispenser — parallel scans, radix-partitioned hash
//! joins, and partitioned aggregation. Outputs reassemble in morsel
//! order and budget charges flush to one shared counter, so results,
//! row order, and `ExecStats::work` are bit-identical to the serial
//! pipeline at any thread count (the serial path stays the verification
//! anchor).
//!
//! ## Reference row engine
//!
//! [`rowexec::execute_rows`] is the original materialising executor,
//! result- and work-identical by construction. It exists so the
//! equivalence suite can diff the two engines on every workload and so
//! `benches/executor.rs` can report the row-vs-batch speedup.

pub mod batch;
pub mod error;
pub mod executor;
pub mod operator;
pub mod ops;
pub mod parallel;
pub mod row;
pub mod rowexec;
pub mod truecard;

pub use batch::{Batch, Projection, BATCH_CAPACITY};
pub use error::ExecError;
pub use executor::{
    execute, execute_for_stats, ExecConfig, ExecOutcome, ExecStats, OutputColumn, OutputSchema,
};
pub use operator::Operator;
pub use row::{lit_to_value, Layout, Row};
pub use rowexec::execute_rows;
pub use truecard::TrueCardinality;
