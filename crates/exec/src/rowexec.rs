//! The reference row-at-a-time engine.
//!
//! This is the original materialising executor: every operator consumes
//! and produces whole `Vec<Row>`s of full-arity rows. It is kept —
//! unchanged in semantics — as the *reference* implementation the batch
//! pipeline is verified against: the equivalence suite asserts identical
//! row multisets and identical [`ExecStats::work`] totals, and
//! `benches/executor.rs` measures row-vs-batch throughput.
//!
//! New callers should use [`crate::execute`] (the batch engine); use
//! [`execute_rows`] only to cross-check results or to benchmark.
//!
//! [`ExecStats::work`]: crate::executor::ExecStats

use crate::error::ExecError;
use crate::executor::{ExecConfig, ExecOutcome, ExecStats, OutputSchema};
use crate::ops::agg::Acc;
use crate::ops::{eval_cmp, first_eq, resolve_conds, Budget};
use crate::row::{lit_to_value, Layout, Row};
use hfqo_query::{
    AccessPath, AggAlgo, JoinAlgo, PhysicalPlan, PlanNode, QueryError, QueryGraph, RelId, Selection,
};
use hfqo_storage::{Database, Value};
use std::collections::HashMap;
use std::time::Instant;

/// Executes a physical plan with the reference row engine. Same
/// validation, budget semantics, and outcome shape as
/// [`crate::execute`].
pub fn execute_rows(
    db: &Database,
    graph: &QueryGraph,
    plan: &PhysicalPlan,
    config: ExecConfig,
) -> Result<ExecOutcome, ExecError> {
    plan.validate(graph)?;
    let start = Instant::now();
    let mut budget = Budget::new(config.work_budget);
    let (rows, layout) = run_node(db, graph, &plan.root, &mut budget)?;
    Ok(ExecOutcome {
        rows,
        layout,
        schema: OutputSchema::for_plan(graph, db.catalog(), plan),
        stats: ExecStats {
            work: budget.work,
            elapsed: start.elapsed(),
        },
    })
}

/// Runs a plan node to full materialisation (also used by the oracle's
/// subset counting in tests).
pub(crate) fn run_node(
    db: &Database,
    graph: &QueryGraph,
    node: &PlanNode,
    budget: &mut Budget,
) -> Result<(Vec<Row>, Layout), ExecError> {
    match node {
        PlanNode::Scan { rel, path } => scan_rows(db, graph, *rel, path, budget),
        PlanNode::Join {
            algo,
            conds,
            left,
            right,
        } => {
            let (l_rows, l_layout) = run_node(db, graph, left, budget)?;
            let (r_rows, r_layout) = run_node(db, graph, right, budget)?;
            join_rows(
                graph, *algo, conds, &l_rows, &l_layout, &r_rows, &r_layout, budget,
            )
        }
        PlanNode::Aggregate { algo, input } => {
            let (rows, layout) = run_node(db, graph, input, budget)?;
            let out = aggregate_rows(graph, *algo, &rows, &layout, budget)?;
            Ok((out, layout))
        }
    }
}

/// Executes a scan of `rel` with the given access path, applying every
/// selection predicate on that relation.
pub(crate) fn scan_rows(
    db: &Database,
    graph: &QueryGraph,
    rel: RelId,
    path: &AccessPath,
    budget: &mut Budget,
) -> Result<(Vec<Row>, Layout), ExecError> {
    let table_id = graph.relation(rel).table;
    let table = db.table(table_id)?;
    let layout = Layout::for_rel(rel, graph, db.catalog());
    let sel_indices: Vec<usize> = graph.selections_on(rel).collect();
    let selections: Vec<&Selection> = sel_indices
        .iter()
        .map(|&i| &graph.selections()[i])
        .collect();

    let mut out = Vec::new();
    let mut row_buf: Row = Vec::with_capacity(table.schema().arity());

    match path {
        AccessPath::SeqScan => {
            for r in 0..table.row_count() {
                budget.charge(1)?;
                table.read_row_into(r, &mut row_buf);
                if passes_all(&row_buf, &selections, &layout) {
                    out.push(row_buf.clone());
                }
            }
        }
        AccessPath::IndexScan {
            index,
            driving_selection,
        } => {
            let row_ids = crate::ops::index_row_ids(db, graph, rel, *index, *driving_selection)?;
            // Residual predicates: everything except the driving one.
            let residual: Vec<&Selection> = sel_indices
                .iter()
                .filter(|&&i| i != *driving_selection)
                .map(|&i| &graph.selections()[i])
                .collect();
            for &rid in &row_ids {
                budget.charge(1)?;
                table.read_row_into(rid as usize, &mut row_buf);
                if passes_all(&row_buf, &residual, &layout) {
                    out.push(row_buf.clone());
                }
            }
        }
    }
    budget.charge(out.len() as u64)?;
    Ok((out, layout))
}

fn passes_all(row: &[Value], selections: &[&Selection], layout: &Layout) -> bool {
    selections.iter().all(|sel| {
        let Some(slot) = layout.slot(sel.column) else {
            return false;
        };
        eval_cmp(sel.op, &row[slot], &lit_to_value(&sel.value))
    })
}

/// Executes a join of two materialised inputs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn join_rows(
    graph: &QueryGraph,
    algo: JoinAlgo,
    conds: &[usize],
    left_rows: &[Row],
    left_layout: &Layout,
    right_rows: &[Row],
    right_layout: &Layout,
    budget: &mut Budget,
) -> Result<(Vec<Row>, Layout), ExecError> {
    let out_layout = left_layout.concat(right_layout);
    let slot_conds = resolve_conds(
        graph,
        conds,
        |c| left_layout.slot(c),
        |c| right_layout.slot(c),
    )?;
    let mut out: Vec<Row> = Vec::new();

    let emit = |l: &Row, r: &Row, out: &mut Vec<Row>| {
        let mut row = Vec::with_capacity(l.len() + r.len());
        row.extend_from_slice(l);
        row.extend_from_slice(r);
        out.push(row);
    };

    match algo {
        JoinAlgo::NestedLoop => {
            for l in left_rows {
                for r in right_rows {
                    budget.charge(1)?;
                    if slot_conds
                        .iter()
                        .all(|c| eval_cmp(c.op, &l[c.l_slot], &r[c.r_slot]))
                    {
                        emit(l, r, &mut out);
                    }
                }
            }
        }
        JoinAlgo::Hash => {
            let key = first_eq(&slot_conds).ok_or_else(|| {
                QueryError::InvalidPlan("hash join requires an equality condition".into())
            })?;
            // Build on the right input.
            let mut table: HashMap<&Value, Vec<usize>> = HashMap::new();
            for (i, r) in right_rows.iter().enumerate() {
                budget.charge(1)?;
                let k = &r[key.r_slot];
                if !k.is_null() {
                    table.entry(k).or_default().push(i);
                }
            }
            // Probe with the left input.
            for l in left_rows {
                budget.charge(1)?;
                let k = &l[key.l_slot];
                if k.is_null() {
                    continue;
                }
                if let Some(matches) = table.get(k) {
                    for &i in matches {
                        budget.charge(1)?;
                        let r = &right_rows[i];
                        if slot_conds
                            .iter()
                            .all(|c| eval_cmp(c.op, &l[c.l_slot], &r[c.r_slot]))
                        {
                            emit(l, r, &mut out);
                        }
                    }
                }
            }
        }
        JoinAlgo::Merge => {
            let key = first_eq(&slot_conds).ok_or_else(|| {
                QueryError::InvalidPlan("merge join requires an equality condition".into())
            })?;
            // Sort index vectors by key (non-null keys only; NULL never
            // matches an equality).
            let mut li: Vec<usize> = (0..left_rows.len())
                .filter(|&i| !left_rows[i][key.l_slot].is_null())
                .collect();
            let mut ri: Vec<usize> = (0..right_rows.len())
                .filter(|&i| !right_rows[i][key.r_slot].is_null())
                .collect();
            let sort_work = (li.len() + ri.len()) as u64;
            budget.charge(sort_work.max(1))?;
            li.sort_by(|&a, &b| left_rows[a][key.l_slot].total_cmp(&left_rows[b][key.l_slot]));
            ri.sort_by(|&a, &b| right_rows[a][key.r_slot].total_cmp(&right_rows[b][key.r_slot]));
            let (mut i, mut j) = (0usize, 0usize);
            while i < li.len() && j < ri.len() {
                budget.charge(1)?;
                let lv = &left_rows[li[i]][key.l_slot];
                let rv = &right_rows[ri[j]][key.r_slot];
                match lv.total_cmp(rv) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        // Find the equal blocks on both sides.
                        let i_end = (i..li.len())
                            .take_while(|&x| left_rows[li[x]][key.l_slot] == *lv)
                            .last()
                            .unwrap_or(i)
                            + 1;
                        let j_end = (j..ri.len())
                            .take_while(|&x| right_rows[ri[x]][key.r_slot] == *rv)
                            .last()
                            .unwrap_or(j)
                            + 1;
                        for &lx in &li[i..i_end] {
                            for &rx in &ri[j..j_end] {
                                budget.charge(1)?;
                                let l = &left_rows[lx];
                                let r = &right_rows[rx];
                                if slot_conds
                                    .iter()
                                    .all(|c| eval_cmp(c.op, &l[c.l_slot], &r[c.r_slot]))
                                {
                                    emit(l, r, &mut out);
                                }
                            }
                        }
                        i = i_end;
                        j = j_end;
                    }
                }
            }
        }
    }
    budget.charge(out.len() as u64)?;
    Ok((out, out_layout))
}

/// Executes the aggregation at the plan root: output rows are the GROUP BY
/// key columns followed by one value per aggregate expression.
///
/// Hash and sort aggregation produce the same groups; sort aggregation
/// additionally emits them in key order (and charges the sort).
pub(crate) fn aggregate_rows(
    graph: &QueryGraph,
    algo: AggAlgo,
    input: &[Row],
    layout: &Layout,
    budget: &mut Budget,
) -> Result<Vec<Row>, ExecError> {
    let key_slots: Vec<usize> = graph
        .group_by()
        .iter()
        .map(|c| {
            layout.slot(*c).ok_or_else(|| {
                QueryError::InvalidPlan(format!("group-by column {c} not in input")).into()
            })
        })
        .collect::<Result<_, ExecError>>()?;
    let agg_slots: Vec<Option<usize>> = graph
        .aggregates()
        .iter()
        .map(|a| match a.column {
            None => Ok(None),
            Some(c) => layout.slot(c).map(Some).ok_or_else(|| -> ExecError {
                QueryError::InvalidPlan(format!("aggregate column {c} not in input")).into()
            }),
        })
        .collect::<Result<_, ExecError>>()?;

    if algo == AggAlgo::Sort {
        // Model the sort's cost; grouping itself then proceeds hash-style
        // over the sorted input (same result, ordered output).
        budget.charge(input.len() as u64)?;
    }

    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    for row in input {
        budget.charge(1)?;
        let key: Vec<Value> = key_slots.iter().map(|&s| row[s].clone()).collect();
        let accs = groups.entry(key).or_insert_with(|| {
            graph
                .aggregates()
                .iter()
                .map(|a| Acc::new(a.func))
                .collect()
        });
        for (acc, slot) in accs.iter_mut().zip(&agg_slots) {
            acc.update(slot.map(|s| &row[s]))?;
        }
    }
    // An aggregate over zero rows with no GROUP BY still yields one row
    // (SQL semantics: COUNT(*) = 0).
    if groups.is_empty() && key_slots.is_empty() {
        groups.insert(
            Vec::new(),
            graph
                .aggregates()
                .iter()
                .map(|a| Acc::new(a.func))
                .collect(),
        );
    }

    let mut out: Vec<Row> = groups
        .into_iter()
        .map(|(mut key, accs)| {
            key.extend(accs.into_iter().map(Acc::finish));
            key
        })
        .collect();
    if algo == AggAlgo::Sort {
        out.sort();
    }
    budget.charge(out.len() as u64)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, IndexKind, TableId, TableSchema};
    use hfqo_query::{AggExpr, BoundColumn, JoinEdge, Lit, Relation};
    use hfqo_sql::{AggFunc, CompareOp};

    // ---- scan ----

    fn db_with_index() -> (Database, QueryGraph) {
        let mut cat = Catalog::new();
        let t = cat
            .add_table(TableSchema::new(
                "t",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("v", ColumnType::Int),
                ],
            ))
            .unwrap();
        cat.add_index("t_id", t, ColumnId(0), IndexKind::BTree, true)
            .unwrap();
        let mut db = Database::new(cat);
        for i in 0..100i64 {
            db.table_mut(t)
                .unwrap()
                .append_row(&[Value::Int(i), Value::Int(i % 10)])
                .unwrap();
        }
        db.build_indexes().unwrap();
        let graph = QueryGraph::new(
            vec![Relation {
                table: t,
                alias: "t".into(),
            }],
            vec![],
            vec![
                Selection {
                    column: BoundColumn::new(RelId(0), ColumnId(0)),
                    op: CompareOp::Lt,
                    value: Lit::Int(50),
                },
                Selection {
                    column: BoundColumn::new(RelId(0), ColumnId(1)),
                    op: CompareOp::Eq,
                    value: Lit::Int(3),
                },
            ],
            vec![],
            vec![],
        );
        (db, graph)
    }

    #[test]
    fn seq_scan_applies_all_selections() {
        let (db, graph) = db_with_index();
        let mut budget = Budget::new(1_000_000);
        let (rows, layout) =
            scan_rows(&db, &graph, RelId(0), &AccessPath::SeqScan, &mut budget).unwrap();
        // id < 50 and id % 10 == 3 → 5 rows (3, 13, 23, 33, 43).
        assert_eq!(rows.len(), 5);
        assert_eq!(layout.width(), 2);
        assert!(rows.iter().all(|r| r[0].as_int().unwrap() < 50));
    }

    #[test]
    fn index_scan_matches_seq_scan() {
        let (db, graph) = db_with_index();
        let mut b1 = Budget::new(1_000_000);
        let (seq_rows, _) =
            scan_rows(&db, &graph, RelId(0), &AccessPath::SeqScan, &mut b1).unwrap();
        let mut b2 = Budget::new(1_000_000);
        let (idx_rows, _) = scan_rows(
            &db,
            &graph,
            RelId(0),
            &AccessPath::IndexScan {
                index: hfqo_catalog::IndexId(0),
                driving_selection: 0,
            },
            &mut b2,
        )
        .unwrap();
        let mut a = seq_rows.clone();
        let mut b = idx_rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // The index scan touches fewer rows than the full scan.
        assert!(b2.work < b1.work, "idx work {} vs seq {}", b2.work, b1.work);
    }

    #[test]
    fn budget_aborts_scan() {
        let (db, graph) = db_with_index();
        let mut budget = Budget::new(10);
        let err = scan_rows(&db, &graph, RelId(0), &AccessPath::SeqScan, &mut budget).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }));
    }

    #[test]
    fn unbuilt_index_errors() {
        let (mut db, graph) = db_with_index();
        // Recreate the database without building indexes.
        db = Database::new(db.catalog().clone());
        let mut budget = Budget::new(1000);
        let err = scan_rows(
            &db,
            &graph,
            RelId(0),
            &AccessPath::IndexScan {
                index: hfqo_catalog::IndexId(0),
                driving_selection: 0,
            },
            &mut budget,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::IndexNotBuilt(_)));
    }

    #[test]
    fn mismatched_index_rejected() {
        let (db, graph) = db_with_index();
        // Driving selection #1 is on column v, but the index covers id.
        let mut budget = Budget::new(1000);
        let err = scan_rows(
            &db,
            &graph,
            RelId(0),
            &AccessPath::IndexScan {
                index: hfqo_catalog::IndexId(0),
                driving_selection: 1,
            },
            &mut budget,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Plan(_)));
    }

    // ---- join ----

    fn join_setup() -> (QueryGraph, Layout, Layout) {
        let mut cat = Catalog::new();
        for n in ["a", "b"] {
            cat.add_table(TableSchema::new(
                n,
                vec![
                    Column::new("k", ColumnType::Int),
                    Column::new("v", ColumnType::Int),
                ],
            ))
            .unwrap();
        }
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: TableId(0),
                    alias: "a".into(),
                },
                Relation {
                    table: TableId(1),
                    alias: "b".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(0)),
            }],
            vec![],
            vec![],
            vec![],
        );
        let la = Layout::for_rel(RelId(0), &graph, &cat);
        let lb = Layout::for_rel(RelId(1), &graph, &cat);
        (graph, la, lb)
    }

    fn rows(pairs: &[(i64, i64)]) -> Vec<Row> {
        pairs
            .iter()
            .map(|&(k, v)| vec![Value::Int(k), Value::Int(v)])
            .collect()
    }

    fn run_join(algo: JoinAlgo, conds: Vec<usize>) -> Vec<Row> {
        let (graph, la, lb) = join_setup();
        let left = rows(&[(1, 10), (2, 20), (2, 21), (3, 30)]);
        let right = rows(&[(2, 200), (3, 300), (3, 301), (4, 400)]);
        let mut budget = Budget::new(1_000_000);
        let (mut out, layout) =
            join_rows(&graph, algo, &conds, &left, &la, &right, &lb, &mut budget).unwrap();
        assert_eq!(layout.width(), 4);
        out.sort();
        out
    }

    #[test]
    fn all_algorithms_agree() {
        let nl = run_join(JoinAlgo::NestedLoop, vec![0]);
        let hash = run_join(JoinAlgo::Hash, vec![0]);
        let merge = run_join(JoinAlgo::Merge, vec![0]);
        // k=2 matches 2 left × 1 right, k=3 matches 1 × 2 → 4 rows.
        assert_eq!(nl.len(), 4);
        assert_eq!(nl, hash);
        assert_eq!(nl, merge);
    }

    #[test]
    fn cross_join_via_nested_loop() {
        let out = run_join(JoinAlgo::NestedLoop, vec![]);
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn hash_without_equality_errors() {
        let (graph, la, lb) = join_setup();
        let mut budget = Budget::new(1000);
        let err = join_rows(
            &graph,
            JoinAlgo::Hash,
            &[],
            &rows(&[(1, 1)]),
            &la,
            &rows(&[(1, 1)]),
            &lb,
            &mut budget,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Plan(_)));
    }

    #[test]
    fn nulls_never_match() {
        let (graph, la, lb) = join_setup();
        let left = vec![
            vec![Value::Null, Value::Int(1)],
            vec![Value::Int(2), Value::Int(2)],
        ];
        let right = vec![
            vec![Value::Null, Value::Int(9)],
            vec![Value::Int(2), Value::Int(8)],
        ];
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::Merge] {
            let mut budget = Budget::new(100_000);
            let (out, _) =
                join_rows(&graph, algo, &[0], &left, &la, &right, &lb, &mut budget).unwrap();
            assert_eq!(out.len(), 1, "{algo:?}");
            assert_eq!(out[0][0], Value::Int(2));
        }
    }

    #[test]
    fn budget_aborts_cross_join() {
        let (graph, la, lb) = join_setup();
        let left = rows(&(0..100).map(|i| (i, i)).collect::<Vec<_>>());
        let right = rows(&(0..100).map(|i| (i, i)).collect::<Vec<_>>());
        let mut budget = Budget::new(500);
        let err = join_rows(
            &graph,
            JoinAlgo::NestedLoop,
            &[],
            &left,
            &la,
            &right,
            &lb,
            &mut budget,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }));
    }

    #[test]
    fn reversed_layout_flips_condition() {
        // Join with b as the left input: the condition must flip.
        let (graph, la, lb) = join_setup();
        let left = rows(&[(2, 200)]);
        let right = rows(&[(2, 20)]);
        let mut budget = Budget::new(1000);
        let (out, _) = join_rows(
            &graph,
            JoinAlgo::Hash,
            &[0],
            &left,
            &lb,
            &right,
            &la,
            &mut budget,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
    }

    // ---- aggregate ----

    fn agg_setup(group: bool) -> (QueryGraph, Layout) {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new(
            "t",
            vec![
                Column::new("g", ColumnType::Int),
                Column::nullable("v", ColumnType::Int),
            ],
        ))
        .unwrap();
        let graph = QueryGraph::new(
            vec![Relation {
                table: TableId(0),
                alias: "t".into(),
            }],
            vec![],
            vec![],
            vec![
                AggExpr {
                    func: AggFunc::Count,
                    column: None,
                },
                AggExpr {
                    func: AggFunc::Sum,
                    column: Some(BoundColumn::new(RelId(0), ColumnId(1))),
                },
                AggExpr {
                    func: AggFunc::Min,
                    column: Some(BoundColumn::new(RelId(0), ColumnId(1))),
                },
                AggExpr {
                    func: AggFunc::Avg,
                    column: Some(BoundColumn::new(RelId(0), ColumnId(1))),
                },
            ],
            if group {
                vec![BoundColumn::new(RelId(0), ColumnId(0))]
            } else {
                vec![]
            },
        );
        let layout = Layout::for_rel(RelId(0), &graph, &cat);
        (graph, layout)
    }

    fn agg_input() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Int(5)],
            vec![Value::Int(2), Value::Int(7)],
        ]
    }

    #[test]
    fn global_aggregate() {
        let (graph, layout) = agg_setup(false);
        let mut budget = Budget::new(1000);
        let out =
            aggregate_rows(&graph, AggAlgo::Hash, &agg_input(), &layout, &mut budget).unwrap();
        assert_eq!(out.len(), 1);
        // COUNT(*) = 4, SUM = 22, MIN = 5, AVG = 22/3.
        assert_eq!(out[0][0], Value::Int(4));
        assert_eq!(out[0][1], Value::Float(22.0));
        assert_eq!(out[0][2], Value::Int(5));
        assert!(matches!(out[0][3], Value::Float(f) if (f - 22.0/3.0).abs() < 1e-12));
    }

    #[test]
    fn grouped_aggregate_sorted() {
        let (graph, layout) = agg_setup(true);
        let mut budget = Budget::new(1000);
        let out =
            aggregate_rows(&graph, AggAlgo::Sort, &agg_input(), &layout, &mut budget).unwrap();
        assert_eq!(out.len(), 2);
        // Sorted by group key.
        assert_eq!(out[0][0], Value::Int(1));
        assert_eq!(out[0][1], Value::Int(2)); // COUNT(*) includes the NULL row
        assert_eq!(out[1][0], Value::Int(2));
        assert_eq!(out[1][2], Value::Float(12.0)); // SUM for group 2
    }

    #[test]
    fn hash_and_sort_agree() {
        let (graph, layout) = agg_setup(true);
        let mut b1 = Budget::new(1000);
        let mut h = aggregate_rows(&graph, AggAlgo::Hash, &agg_input(), &layout, &mut b1).unwrap();
        let mut b2 = Budget::new(1000);
        let s = aggregate_rows(&graph, AggAlgo::Sort, &agg_input(), &layout, &mut b2).unwrap();
        h.sort();
        assert_eq!(h, s);
    }

    #[test]
    fn empty_input_global_yields_zero_count() {
        let (graph, layout) = agg_setup(false);
        let mut budget = Budget::new(1000);
        let out = aggregate_rows(&graph, AggAlgo::Hash, &[], &layout, &mut budget).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::Int(0));
        assert!(out[0][2].is_null()); // MIN of nothing
        assert!(out[0][3].is_null()); // AVG of nothing
    }

    #[test]
    fn empty_input_grouped_yields_no_rows() {
        let (graph, layout) = agg_setup(true);
        let mut budget = Budget::new(1000);
        let out = aggregate_rows(&graph, AggAlgo::Sort, &[], &layout, &mut budget).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn sum_over_text_errors() {
        let (graph, layout) = agg_setup(false);
        let rows = vec![vec![Value::Int(1), Value::str("oops")]];
        let mut budget = Budget::new(1000);
        // Build a layout-compatible row with a string where SUM expects a
        // number; the executor reports BadAggregate.
        let err = aggregate_rows(&graph, AggAlgo::Hash, &rows, &layout, &mut budget).unwrap_err();
        assert!(matches!(err, ExecError::BadAggregate(_)));
    }
}
