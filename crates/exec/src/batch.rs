//! Columnar batches and per-node projections.
//!
//! A [`Batch`] is a fixed-capacity columnar chunk: one
//! [`ColumnVector`] per projected column plus an explicit row count
//! (explicit because a projection can legally be empty — `COUNT(*)`
//! needs no column data, only row counts). Batches flow between
//! operators instead of materialised `Vec<Row>` intermediates, so joins
//! touch only the bytes of the columns that downstream nodes actually
//! reference.
//!
//! A [`Projection`] is the ordered set of bound columns a plan node's
//! output carries. The pipeline builder computes one per node from the
//! query graph (see [`crate::operator`]); ordering is always *leaf order,
//! then column-id order within a relation*, which makes the full
//! (unprojected) case bit-identical to the row engine's [`Layout`].
//!
//! [`Layout`]: crate::row::Layout

use hfqo_catalog::{Catalog, ColumnType};
use hfqo_query::{BoundColumn, QueryGraph};
use hfqo_storage::{ColumnVector, Value};

/// Target number of rows per batch. Large enough to amortise per-batch
/// dispatch, small enough that a working set of a few batches stays in
/// cache.
pub const BATCH_CAPACITY: usize = 1024;

/// The ordered set of `(relation, column)` pairs a plan node outputs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Projection {
    cols: Vec<BoundColumn>,
}

impl Projection {
    /// A projection over the given columns (caller fixes the order).
    pub fn new(cols: Vec<BoundColumn>) -> Self {
        Self { cols }
    }

    /// The projected columns, in output order.
    pub fn columns(&self) -> &[BoundColumn] {
        &self.cols
    }

    /// Number of projected columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// The output slot of a bound column, if projected.
    #[inline]
    pub fn slot(&self, col: BoundColumn) -> Option<usize> {
        self.cols.iter().position(|&c| c == col)
    }

    /// The storage types of the projected columns.
    pub fn column_types(&self, graph: &QueryGraph, catalog: &Catalog) -> Vec<ColumnType> {
        self.cols
            .iter()
            .map(|c| {
                catalog
                    .table(graph.relation(c.rel).table)
                    .ok()
                    .and_then(|t| t.column(c.column))
                    .map(|col| col.ty())
                    // Unknown columns cannot be read; Int keeps the chunk
                    // well-formed until validation rejects the plan.
                    .unwrap_or(ColumnType::Int)
            })
            .collect()
    }
}

/// A fixed-capacity columnar chunk.
#[derive(Debug, Clone)]
pub struct Batch {
    cols: Vec<ColumnVector>,
    rows: usize,
}

impl Batch {
    /// An empty batch with one column vector per type.
    pub fn new(types: &[ColumnType]) -> Self {
        Self {
            cols: types
                .iter()
                .map(|&t| ColumnVector::with_capacity(t, BATCH_CAPACITY))
                .collect(),
            rows: 0,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the batch holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Whether the batch reached [`BATCH_CAPACITY`].
    #[inline]
    pub fn is_full(&self) -> bool {
        self.rows >= BATCH_CAPACITY
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// The column vector at `slot`.
    #[inline]
    pub fn column(&self, slot: usize) -> &ColumnVector {
        &self.cols[slot]
    }

    /// The value at (`slot`, `row`).
    #[inline]
    pub fn value_at(&self, slot: usize, row: usize) -> Value {
        self.cols[slot].get(row)
    }

    /// Appends one row gathered from `src` columns at `src_row`, one
    /// source per output column.
    ///
    /// `sources` yields `(source column, source row)` pairs in output
    /// order; the common case routes through [`ColumnVector::push_from`]
    /// so fixed-width values copy without materialising [`Value`]s.
    #[inline]
    pub fn push_gathered<'a>(&mut self, sources: impl Iterator<Item = (&'a ColumnVector, usize)>) {
        for (slot, (src, src_row)) in sources.enumerate() {
            self.cols[slot].push_from(src, src_row);
        }
        self.rows += 1;
    }

    /// Appends one row of owned values (used by aggregation output,
    /// whose values are computed rather than gathered).
    pub fn push_values(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (col, v) in self.cols.iter_mut().zip(row) {
            let ok = col.push(v);
            debug_assert!(ok, "aggregate output value fits its column type");
        }
        self.rows += 1;
    }

    /// Appends rows of the source columns selected by `row_ids`,
    /// column-wise (the scan's vectorised gather). `src` yields one
    /// source column per output slot, in slot order.
    pub fn gather_rows_from<'a>(
        &mut self,
        src: impl Iterator<Item = &'a ColumnVector>,
        row_ids: &[u32],
    ) {
        let mut gathered = 0;
        for (dst, s) in self.cols.iter_mut().zip(src) {
            s.gather_into(row_ids, dst);
            gathered += 1;
        }
        debug_assert_eq!(gathered, self.cols.len());
        self.rows += row_ids.len();
    }

    /// Appends the rows named by an ascending selection vector,
    /// column-wise — the filtered scan's bulk gather. Dense selections
    /// (long contiguous spans of survivors) take the span-copy path,
    /// sparse ones the per-row gather; see
    /// [`ColumnVector::append_selected`]. Row order is the selection
    /// order, so results are identical to a per-row gather.
    pub fn append_selected_from<'a>(
        &mut self,
        src: impl Iterator<Item = &'a ColumnVector>,
        sel: &[u32],
    ) {
        // Span detection runs once for the whole batch, not per column.
        let spans = hfqo_storage::coalesce_spans(sel);
        let mut copied = 0;
        for (dst, s) in self.cols.iter_mut().zip(src) {
            match &spans {
                Some(spans) => {
                    for &(start, len) in spans {
                        dst.append_range(s, start, len);
                    }
                }
                None => s.gather_into(sel, dst),
            }
            copied += 1;
        }
        debug_assert_eq!(copied, self.cols.len());
        self.rows += sel.len();
    }

    /// Appends the contiguous source range `start .. start + len`
    /// column-wise (the unfiltered scan's fast path — a `memcpy` for
    /// fixed-width columns instead of a per-row gather). `src` yields
    /// one source column per output slot, in slot order.
    pub fn append_range_from<'a>(
        &mut self,
        src: impl Iterator<Item = &'a ColumnVector>,
        start: usize,
        len: usize,
    ) {
        let mut copied = 0;
        for (dst, s) in self.cols.iter_mut().zip(src) {
            dst.append_range(s, start, len);
            copied += 1;
        }
        debug_assert_eq!(copied, self.cols.len());
        self.rows += len;
    }

    /// Bumps the row count without touching columns — only meaningful
    /// for zero-width batches (e.g. a `COUNT(*)` pipeline).
    pub fn push_empty_rows(&mut self, n: usize) {
        debug_assert!(self.cols.is_empty(), "only for zero-width batches");
        self.rows += n;
    }

    /// Materialises row `row` into a `Vec<Value>` (the facade's output
    /// conversion; not used between operators).
    pub fn row_values(&self, row: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.get(row)).collect()
    }

    /// Appends every row to `out`, materialised column-wise: each
    /// column's values are exported in one monomorphic pass
    /// ([`ColumnVector::values_onto`]) instead of a per-cell dispatch.
    /// Row order and contents are identical to pushing
    /// [`Batch::row_values`] per row — the facade's bulk output path.
    pub fn export_rows(&self, out: &mut Vec<Vec<Value>>) {
        let base = out.len();
        out.resize_with(base + self.rows, || Vec::with_capacity(self.cols.len()));
        for col in &self.cols {
            col.values_onto(&mut out[base..]);
        }
    }
}

/// Accumulates rows into capacity-bounded batches.
#[derive(Debug)]
pub struct BatchBuilder {
    types: Vec<ColumnType>,
    current: Batch,
    done: std::collections::VecDeque<Batch>,
}

impl BatchBuilder {
    /// A builder producing batches with the given column types.
    pub fn new(types: Vec<ColumnType>) -> Self {
        let current = Batch::new(&types);
        Self {
            types,
            current,
            done: std::collections::VecDeque::new(),
        }
    }

    /// The batch currently being filled.
    #[inline]
    pub fn current_mut(&mut self) -> &mut Batch {
        &mut self.current
    }

    /// Seals the current batch if it reached capacity.
    #[inline]
    pub fn spill_if_full(&mut self) {
        if self.current.is_full() {
            let full = std::mem::replace(&mut self.current, Batch::new(&self.types));
            self.done.push_back(full);
        }
    }

    /// Pops the next completed batch, if any.
    pub fn pop(&mut self) -> Option<Batch> {
        self.done.pop_front()
    }

    /// Whether at least one completed batch is queued.
    pub fn has_ready(&self) -> bool {
        !self.done.is_empty()
    }

    /// Seals the (possibly partial) current batch; call when input is
    /// exhausted.
    pub fn flush(&mut self) {
        if !self.current.is_empty() {
            let partial = std::mem::replace(&mut self.current, Batch::new(&self.types));
            self.done.push_back(partial);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Column, ColumnId, TableSchema};
    use hfqo_query::{RelId, Relation};

    fn graph_and_catalog() -> (QueryGraph, Catalog) {
        let mut cat = Catalog::new();
        let t = cat
            .add_table(TableSchema::new(
                "t",
                vec![
                    Column::new("a", ColumnType::Int),
                    Column::new("b", ColumnType::Text),
                ],
            ))
            .unwrap();
        let graph = QueryGraph::new(
            vec![Relation {
                table: t,
                alias: "t".into(),
            }],
            vec![],
            vec![],
            vec![],
            vec![],
        );
        (graph, cat)
    }

    #[test]
    fn projection_slots_and_types() {
        let (graph, cat) = graph_and_catalog();
        let a = BoundColumn::new(RelId(0), ColumnId(0));
        let b = BoundColumn::new(RelId(0), ColumnId(1));
        let p = Projection::new(vec![b, a]);
        assert_eq!(p.width(), 2);
        assert_eq!(p.slot(b), Some(0));
        assert_eq!(p.slot(a), Some(1));
        assert_eq!(
            p.column_types(&graph, &cat),
            vec![ColumnType::Text, ColumnType::Int]
        );
        assert_eq!(p.slot(BoundColumn::new(RelId(1), ColumnId(0))), None);
    }

    #[test]
    fn batch_push_and_read_back() {
        let mut b = Batch::new(&[ColumnType::Int, ColumnType::Text]);
        b.push_values(&[Value::Int(1), Value::str("x")]);
        b.push_values(&[Value::Null, Value::str("y")]);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.width(), 2);
        assert_eq!(b.value_at(1, 1), Value::str("y"));
        assert!(b.value_at(0, 1).is_null());
        assert_eq!(b.row_values(0), vec![Value::Int(1), Value::str("x")]);
    }

    #[test]
    fn zero_width_batches_count_rows() {
        let mut b = Batch::new(&[]);
        b.push_empty_rows(5);
        b.push_empty_rows(2);
        assert_eq!(b.rows(), 7);
        assert!(b.row_values(3).is_empty());
    }

    #[test]
    fn builder_seals_at_capacity() {
        let mut builder = BatchBuilder::new(vec![ColumnType::Int]);
        for i in 0..(BATCH_CAPACITY + 10) {
            builder.current_mut().push_values(&[Value::Int(i as i64)]);
            builder.spill_if_full();
        }
        assert!(builder.has_ready());
        let first = builder.pop().unwrap();
        assert_eq!(first.rows(), BATCH_CAPACITY);
        assert!(builder.pop().is_none());
        builder.flush();
        let rest = builder.pop().unwrap();
        assert_eq!(rest.rows(), 10);
        assert_eq!(rest.value_at(0, 0), Value::Int(BATCH_CAPACITY as i64));
    }

    #[test]
    fn gather_rows_is_columnwise() {
        let mut src_a = ColumnVector::new(ColumnType::Int);
        let mut src_b = ColumnVector::new(ColumnType::Text);
        for i in 0..4 {
            src_a.push(&Value::Int(i));
            src_b.push(&Value::str(format!("s{i}")));
        }
        let mut b = Batch::new(&[ColumnType::Int, ColumnType::Text]);
        b.gather_rows_from([&src_a, &src_b].into_iter(), &[3, 1]);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.row_values(0), vec![Value::Int(3), Value::str("s3")]);
        assert_eq!(b.row_values(1), vec![Value::Int(1), Value::str("s1")]);
    }
}
