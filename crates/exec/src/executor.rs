//! The plan executor.

use crate::error::ExecError;
use crate::ops::{agg, join, scan, Budget};
use crate::row::{Layout, Row};
use hfqo_query::{PhysicalPlan, PlanNode, QueryGraph};
use hfqo_storage::Database;
use std::time::{Duration, Instant};

/// Execution configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Maximum units of work (row visits + comparisons + emitted rows)
    /// before the execution aborts. This is the "timeout" that makes
    /// catastrophic plans cheap to observe instead of hour-long runs.
    pub work_budget: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        // Emitted rows count against the budget, so this also bounds
        // materialised memory (a few hundred MB worst case at typical row
        // widths) — large enough for every legitimate workload plan,
        // small enough that runaway cross joins abort quickly.
        Self {
            work_budget: 5_000_000,
        }
    }
}

impl ExecConfig {
    /// A configuration with the given budget.
    pub fn with_budget(work_budget: u64) -> Self {
        Self { work_budget }
    }
}

/// Statistics of one execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecStats {
    /// Total units of work performed.
    pub work: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// The result of executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Output rows.
    pub rows: Vec<Row>,
    /// Output layout (empty/meaningless after aggregation, which reshapes
    /// rows to group keys + aggregate values).
    pub layout: Layout,
    /// Work and timing statistics.
    pub stats: ExecStats,
}

/// Executes a physical plan against a database.
///
/// The plan is validated first; execution then either completes within the
/// work budget or aborts with [`ExecError::BudgetExceeded`].
pub fn execute(
    db: &Database,
    graph: &QueryGraph,
    plan: &PhysicalPlan,
    config: ExecConfig,
) -> Result<ExecOutcome, ExecError> {
    plan.validate(graph)?;
    let start = Instant::now();
    let mut budget = Budget::new(config.work_budget);
    let (rows, layout) = run_node(db, graph, &plan.root, &mut budget)?;
    Ok(ExecOutcome {
        rows,
        layout,
        stats: ExecStats {
            work: budget.work,
            elapsed: start.elapsed(),
        },
    })
}

fn run_node(
    db: &Database,
    graph: &QueryGraph,
    node: &PlanNode,
    budget: &mut Budget,
) -> Result<(Vec<Row>, Layout), ExecError> {
    match node {
        PlanNode::Scan { rel, path } => scan::scan(db, graph, *rel, path, budget),
        PlanNode::Join {
            algo,
            conds,
            left,
            right,
        } => {
            let (l_rows, l_layout) = run_node(db, graph, left, budget)?;
            let (r_rows, r_layout) = run_node(db, graph, right, budget)?;
            join::join(
                graph, *algo, conds, &l_rows, &l_layout, &r_rows, &r_layout, budget,
            )
        }
        PlanNode::Aggregate { algo, input } => {
            let (rows, layout) = run_node(db, graph, input, budget)?;
            let out = agg::aggregate(graph, *algo, &rows, &layout, budget)?;
            Ok((out, layout))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, IndexKind, TableSchema};
    use hfqo_query::{
        AccessPath, AggAlgo, AggExpr, BoundColumn, JoinAlgo, JoinEdge, Lit, RelId, Relation,
        Selection,
    };
    use hfqo_sql::{AggFunc, CompareOp};
    use hfqo_storage::Value;

    /// Two tables: dim (20 rows, pk) and fact (200 rows, fk = i % 20).
    fn setup() -> (Database, QueryGraph) {
        let mut cat = Catalog::new();
        let dim = cat
            .add_table(TableSchema::new(
                "dim",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("attr", ColumnType::Int),
                ],
            ))
            .unwrap();
        let fact = cat
            .add_table(TableSchema::new(
                "fact",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("dim_id", ColumnType::Int),
                    Column::new("val", ColumnType::Int),
                ],
            ))
            .unwrap();
        cat.add_index("dim_id_idx", dim, ColumnId(0), IndexKind::BTree, true)
            .unwrap();
        let mut db = Database::new(cat);
        for i in 0..20i64 {
            db.table_mut(dim)
                .unwrap()
                .append_row(&[Value::Int(i), Value::Int(i % 5)])
                .unwrap();
        }
        for i in 0..200i64 {
            db.table_mut(fact)
                .unwrap()
                .append_row(&[Value::Int(i), Value::Int(i % 20), Value::Int(i)])
                .unwrap();
        }
        db.build_indexes().unwrap();
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: dim,
                    alias: "d".into(),
                },
                Relation {
                    table: fact,
                    alias: "f".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(1)),
            }],
            vec![Selection {
                column: BoundColumn::new(RelId(0), ColumnId(1)),
                op: CompareOp::Eq,
                value: Lit::Int(0),
            }],
            vec![AggExpr {
                func: AggFunc::Count,
                column: None,
            }],
            vec![],
        );
        (db, graph)
    }

    fn scan_node(rel: u32) -> PlanNode {
        PlanNode::Scan {
            rel: RelId(rel),
            path: AccessPath::SeqScan,
        }
    }

    #[test]
    fn join_then_aggregate_counts_correctly() {
        let (db, graph) = setup();
        // dim.attr = 0 matches ids {0, 5, 10, 15}; each id has 10 fact rows.
        let plan = PhysicalPlan::new(PlanNode::Aggregate {
            algo: AggAlgo::Hash,
            input: Box::new(PlanNode::Join {
                algo: JoinAlgo::Hash,
                conds: vec![0],
                left: Box::new(scan_node(1)),
                right: Box::new(scan_node(0)),
            }),
        });
        let out = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Int(40));
        assert!(out.stats.work > 0);
    }

    #[test]
    fn all_join_algorithms_give_same_count() {
        let (db, graph) = setup();
        let mut counts = Vec::new();
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::Merge] {
            let plan = PhysicalPlan::new(PlanNode::Join {
                algo,
                conds: vec![0],
                left: Box::new(scan_node(0)),
                right: Box::new(scan_node(1)),
            });
            let out = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
            counts.push(out.rows.len());
        }
        assert_eq!(counts, vec![40, 40, 40]);
    }

    #[test]
    fn budget_aborts_bad_plans_quickly() {
        let (db, graph) = setup();
        let cross = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::NestedLoop,
            conds: vec![],
            left: Box::new(scan_node(0)),
            right: Box::new(scan_node(1)),
        });
        // Cross product would need 4 * 200 = 800 comparisons at minimum.
        let err = execute(&db, &graph, &cross, ExecConfig::with_budget(300)).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }));
    }

    #[test]
    fn invalid_plans_rejected_before_running() {
        let (db, graph) = setup();
        let incomplete = PhysicalPlan::new(scan_node(0));
        assert!(matches!(
            execute(&db, &graph, &incomplete, ExecConfig::default()),
            Err(ExecError::Plan(_))
        ));
    }

    #[test]
    fn index_scan_plan_executes() {
        let (db, mut graph) = setup();
        // Add a pk selection so the index has a driving predicate.
        graph = QueryGraph::new(
            graph.relations().to_vec(),
            graph.joins().to_vec(),
            vec![Selection {
                column: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Lt,
                value: Lit::Int(10),
            }],
            graph.aggregates().to_vec(),
            vec![],
        );
        let plan = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::Hash,
            conds: vec![0],
            left: Box::new(PlanNode::Scan {
                rel: RelId(0),
                path: AccessPath::IndexScan {
                    index: hfqo_catalog::IndexId(0),
                    driving_selection: 0,
                },
            }),
            right: Box::new(scan_node(1)),
        });
        let out = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        // 10 dim rows × 10 fact rows each.
        assert_eq!(out.rows.len(), 100);
    }

    #[test]
    fn execution_is_deterministic() {
        let (db, graph) = setup();
        let plan = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::Merge,
            conds: vec![0],
            left: Box::new(scan_node(0)),
            right: Box::new(scan_node(1)),
        });
        let a = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        let b = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.stats.work, b.stats.work);
    }
}
