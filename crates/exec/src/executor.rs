//! The plan executor facade.
//!
//! [`execute`] runs a validated physical plan through the vectorized
//! batch pipeline (see [`crate::operator`]) and materialises the final
//! batches into rows for the caller. The reference row engine remains
//! available as [`crate::rowexec::execute_rows`] with the same signature
//! and identical results and work totals.

use crate::error::ExecError;
use crate::operator::{aggregate_inputs, all_columns, build_pipeline, ColSet};
use crate::ops::agg::agg_output_type;
use crate::ops::Budget;
use crate::row::{Layout, Row};
use hfqo_catalog::{Catalog, ColumnType};
use hfqo_query::{BoundColumn, PhysicalPlan, PlanNode, QueryGraph};
use hfqo_sql::AggFunc;
use std::fmt;
use std::time::{Duration, Instant};

/// Execution configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Maximum units of work (row visits + comparisons + emitted rows)
    /// before the execution aborts. This is the "timeout" that makes
    /// catastrophic plans cheap to observe instead of hour-long runs.
    pub work_budget: u64,
    /// Worker threads for intra-query parallelism. `1` (the default)
    /// runs the serial pull pipeline; `> 1` dispatches to the
    /// morsel-driven parallel evaluator ([`crate::parallel`]), whose
    /// results and work totals are identical to the serial path at any
    /// thread count. Worker teams are capped at the machine's available
    /// parallelism — oversubscribing cores only adds scheduling
    /// overhead.
    pub threads: usize,
    /// Rows per morsel claimed by parallel workers. Only read when
    /// `threads > 1`; any positive value yields identical results.
    pub morsel_rows: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        // Emitted rows count against the budget, so this also bounds
        // materialised memory (a few hundred MB worst case at typical row
        // widths) — large enough for every legitimate workload plan,
        // small enough that runaway cross joins abort quickly.
        Self {
            work_budget: 5_000_000,
            threads: 1,
            morsel_rows: 4096,
        }
    }
}

impl ExecConfig {
    /// A configuration with the given budget.
    pub fn with_budget(work_budget: u64) -> Self {
        Self {
            work_budget,
            ..Self::default()
        }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the morsel size in rows (clamped to at least 1).
    pub fn morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows.max(1);
        self
    }
}

/// Statistics of one execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecStats {
    /// Total units of work performed.
    pub work: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// One column of a query's output.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputColumn {
    /// A base-table column carried to the output.
    Column {
        /// The bound column.
        col: BoundColumn,
        /// `alias.column` rendering.
        name: String,
        /// Storage type.
        ty: ColumnType,
    },
    /// A computed aggregate value.
    Aggregate {
        /// Aggregate function.
        func: AggFunc,
        /// Input column (`None` for `COUNT(*)`).
        input: Option<BoundColumn>,
        /// `func(alias.column)` rendering.
        name: String,
        /// Storage type of the aggregate's value.
        ty: ColumnType,
    },
}

impl OutputColumn {
    /// The display name (`"f.val"`, `"count(*)"`, …).
    pub fn name(&self) -> &str {
        match self {
            OutputColumn::Column { name, .. } | OutputColumn::Aggregate { name, .. } => name,
        }
    }

    /// The column's storage type.
    pub fn ty(&self) -> ColumnType {
        match self {
            OutputColumn::Column { ty, .. } | OutputColumn::Aggregate { ty, .. } => *ty,
        }
    }
}

/// The real output schema of an executed plan: one entry per output row
/// slot. For aggregated queries this is the `GROUP BY` keys followed by
/// the aggregate values — the shape the row data actually has (the
/// historical `layout` field was meaningless there).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OutputSchema {
    /// Output columns, in row slot order.
    pub columns: Vec<OutputColumn>,
}

impl OutputSchema {
    /// The schema `plan` produces over `graph`.
    pub fn for_plan(graph: &QueryGraph, catalog: &Catalog, plan: &PhysicalPlan) -> Self {
        let col_name = |c: BoundColumn| -> String {
            let rel = graph.relation(c.rel);
            let col = catalog
                .table(rel.table)
                .ok()
                .and_then(|t| t.column(c.column))
                .map(|col| col.name().to_string())
                .unwrap_or_else(|| format!("#{}", c.column.0));
            format!("{}.{}", rel.alias, col)
        };
        let col_ty = |c: BoundColumn| -> ColumnType {
            catalog
                .table(graph.relation(c.rel).table)
                .ok()
                .and_then(|t| t.column(c.column))
                .map(|col| col.ty())
                .unwrap_or(ColumnType::Int)
        };
        let columns = if matches!(plan.root, PlanNode::Aggregate { .. }) {
            let mut cols: Vec<OutputColumn> = graph
                .group_by()
                .iter()
                .map(|&c| OutputColumn::Column {
                    col: c,
                    name: col_name(c),
                    ty: col_ty(c),
                })
                .collect();
            cols.extend(graph.aggregates().iter().map(|a| {
                let func_name = match a.func {
                    AggFunc::Count => "count",
                    AggFunc::Sum => "sum",
                    AggFunc::Min => "min",
                    AggFunc::Max => "max",
                    AggFunc::Avg => "avg",
                };
                let name = match a.column {
                    Some(c) => format!("{func_name}({})", col_name(c)),
                    None => format!("{func_name}(*)"),
                };
                OutputColumn::Aggregate {
                    func: a.func,
                    input: a.column,
                    name,
                    ty: agg_output_type(a.func, a.column.map(col_ty)),
                }
            }));
            cols
        } else {
            // Non-aggregated plans output every column of every relation,
            // leaf order, column order — the row engine's layout.
            let layout = Layout::for_node(&plan.root, graph, catalog);
            let mut cols = Vec::with_capacity(layout.width());
            for rel in layout.relations() {
                let arity = catalog
                    .table(graph.relation(rel).table)
                    .map(|t| t.arity())
                    .unwrap_or(0);
                for i in 0..arity {
                    let c = BoundColumn::new(rel, hfqo_catalog::ColumnId(i as u32));
                    cols.push(OutputColumn::Column {
                        col: c,
                        name: col_name(c),
                        ty: col_ty(c),
                    });
                }
            }
            cols
        };
        Self { columns }
    }
}

impl fmt::Display for OutputSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", c.name())?;
        }
        Ok(())
    }
}

/// The result of executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Output rows, shaped as described by `schema`.
    pub rows: Vec<Row>,
    /// Layout of the *relational* output (leaf order, full arity). For
    /// aggregated plans the row shape is `schema`, not this — kept for
    /// callers that resolve bound columns on non-aggregated results.
    pub layout: Layout,
    /// The true output schema: base columns, or group keys + aggregate
    /// values for aggregated plans.
    pub schema: OutputSchema,
    /// Work and timing statistics.
    pub stats: ExecStats,
}

/// Executes a physical plan against a database with the vectorized batch
/// engine.
///
/// The plan is validated first; execution then either completes within
/// the work budget or aborts with [`ExecError::BudgetExceeded`]. Results
/// (row multisets) and work totals are identical to the reference row
/// engine ([`crate::rowexec::execute_rows`]); only per-batch abort
/// granularity and hash-group emission order may differ.
pub fn execute(
    db: &hfqo_storage::Database,
    graph: &QueryGraph,
    plan: &PhysicalPlan,
    config: ExecConfig,
) -> Result<ExecOutcome, ExecError> {
    plan.validate(graph)?;
    let start = Instant::now();

    let required: ColSet = match &plan.root {
        PlanNode::Aggregate { .. } => aggregate_inputs(graph),
        _ => all_columns(graph, db),
    };
    let (rows, work) = if config.threads > 1 {
        crate::parallel::execute_materialized(db, graph, &plan.root, &required, config)?
    } else {
        let mut budget = Budget::new(config.work_budget);
        let mut op = build_pipeline(db, graph, &plan.root, &required)?;
        op.open(&mut budget)?;
        let mut rows: Vec<Row> = Vec::new();
        while let Some(batch) = op.next_batch(&mut budget)? {
            batch.export_rows(&mut rows);
        }
        op.close();
        (rows, budget.work)
    };

    Ok(ExecOutcome {
        rows,
        layout: Layout::for_node(&plan.root, graph, db.catalog()),
        schema: OutputSchema::for_plan(graph, db.catalog(), plan),
        stats: ExecStats {
            work,
            elapsed: start.elapsed(),
        },
    })
}

/// Executes `plan` for its side observations only: returns the output
/// row count and the work performed, materialising nothing. The
/// pipeline carries zero columns beyond what joins and aggregates need
/// internally, and work charges are column-independent, so the work
/// total is identical to a full [`execute`]. Validates the plan like
/// [`execute`].
pub fn execute_for_stats(
    db: &hfqo_storage::Database,
    graph: &QueryGraph,
    plan: &PhysicalPlan,
    config: ExecConfig,
) -> Result<(usize, u64), ExecError> {
    plan.validate(graph)?;
    count_rows_unvalidated(db, graph, plan, config)
}

/// [`execute_for_stats`] without plan validation: the true-cardinality
/// oracle builds structurally-valid subset plans that do not cover the
/// whole graph.
pub(crate) fn count_rows_unvalidated(
    db: &hfqo_storage::Database,
    graph: &QueryGraph,
    plan: &PhysicalPlan,
    config: ExecConfig,
) -> Result<(usize, u64), ExecError> {
    let mut budget = Budget::new(config.work_budget);
    let required = match &plan.root {
        PlanNode::Aggregate { .. } => aggregate_inputs(graph),
        _ => ColSet::new(),
    };
    let mut op = build_pipeline(db, graph, &plan.root, &required)?;
    op.open(&mut budget)?;
    let mut rows = 0usize;
    while let Some(batch) = op.next_batch(&mut budget)? {
        rows += batch.rows();
    }
    op.close();
    Ok((rows, budget.work))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowexec::execute_rows;
    use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, IndexKind, TableSchema};
    use hfqo_query::{
        AccessPath, AggAlgo, AggExpr, BoundColumn, JoinAlgo, JoinEdge, Lit, RelId, Relation,
        Selection,
    };
    use hfqo_sql::{AggFunc, CompareOp};
    use hfqo_storage::{Database, Value};

    /// Two tables: dim (20 rows, pk) and fact (200 rows, fk = i % 20).
    fn setup() -> (Database, QueryGraph) {
        let mut cat = Catalog::new();
        let dim = cat
            .add_table(TableSchema::new(
                "dim",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("attr", ColumnType::Int),
                ],
            ))
            .unwrap();
        let fact = cat
            .add_table(TableSchema::new(
                "fact",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("dim_id", ColumnType::Int),
                    Column::new("val", ColumnType::Int),
                ],
            ))
            .unwrap();
        cat.add_index("dim_id_idx", dim, ColumnId(0), IndexKind::BTree, true)
            .unwrap();
        let mut db = Database::new(cat);
        for i in 0..20i64 {
            db.table_mut(dim)
                .unwrap()
                .append_row(&[Value::Int(i), Value::Int(i % 5)])
                .unwrap();
        }
        for i in 0..200i64 {
            db.table_mut(fact)
                .unwrap()
                .append_row(&[Value::Int(i), Value::Int(i % 20), Value::Int(i)])
                .unwrap();
        }
        db.build_indexes().unwrap();
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: dim,
                    alias: "d".into(),
                },
                Relation {
                    table: fact,
                    alias: "f".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(1)),
            }],
            vec![Selection {
                column: BoundColumn::new(RelId(0), ColumnId(1)),
                op: CompareOp::Eq,
                value: Lit::Int(0),
            }],
            vec![AggExpr {
                func: AggFunc::Count,
                column: None,
            }],
            vec![],
        );
        (db, graph)
    }

    fn scan_node(rel: u32) -> PlanNode {
        PlanNode::Scan {
            rel: RelId(rel),
            path: AccessPath::SeqScan,
        }
    }

    #[test]
    fn join_then_aggregate_counts_correctly() {
        let (db, graph) = setup();
        // dim.attr = 0 matches ids {0, 5, 10, 15}; each id has 10 fact rows.
        let plan = PhysicalPlan::new(PlanNode::Aggregate {
            algo: AggAlgo::Hash,
            input: Box::new(PlanNode::Join {
                algo: JoinAlgo::Hash,
                conds: vec![0],
                left: Box::new(scan_node(1)),
                right: Box::new(scan_node(0)),
            }),
        });
        let out = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Int(40));
        assert!(out.stats.work > 0);
    }

    #[test]
    fn all_join_algorithms_give_same_count() {
        let (db, graph) = setup();
        let mut counts = Vec::new();
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::Merge] {
            let plan = PhysicalPlan::new(PlanNode::Join {
                algo,
                conds: vec![0],
                left: Box::new(scan_node(0)),
                right: Box::new(scan_node(1)),
            });
            let out = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
            counts.push(out.rows.len());
        }
        assert_eq!(counts, vec![40, 40, 40]);
    }

    #[test]
    fn budget_aborts_bad_plans_quickly() {
        let (db, graph) = setup();
        let cross = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::NestedLoop,
            conds: vec![],
            left: Box::new(scan_node(0)),
            right: Box::new(scan_node(1)),
        });
        // Cross product would need 4 * 200 = 800 comparisons at minimum.
        let err = execute(&db, &graph, &cross, ExecConfig::with_budget(300)).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }));
    }

    #[test]
    fn invalid_plans_rejected_before_running() {
        let (db, graph) = setup();
        let incomplete = PhysicalPlan::new(scan_node(0));
        assert!(matches!(
            execute(&db, &graph, &incomplete, ExecConfig::default()),
            Err(ExecError::Plan(_))
        ));
    }

    #[test]
    fn index_scan_plan_executes() {
        let (db, mut graph) = setup();
        // Add a pk selection so the index has a driving predicate.
        graph = QueryGraph::new(
            graph.relations().to_vec(),
            graph.joins().to_vec(),
            vec![Selection {
                column: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Lt,
                value: Lit::Int(10),
            }],
            graph.aggregates().to_vec(),
            vec![],
        );
        let plan = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::Hash,
            conds: vec![0],
            left: Box::new(PlanNode::Scan {
                rel: RelId(0),
                path: AccessPath::IndexScan {
                    index: hfqo_catalog::IndexId(0),
                    driving_selection: 0,
                },
            }),
            right: Box::new(scan_node(1)),
        });
        let out = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        // 10 dim rows × 10 fact rows each.
        assert_eq!(out.rows.len(), 100);
    }

    #[test]
    fn execution_is_deterministic() {
        let (db, graph) = setup();
        let plan = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::Merge,
            conds: vec![0],
            left: Box::new(scan_node(0)),
            right: Box::new(scan_node(1)),
        });
        let a = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        let b = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.stats.work, b.stats.work);
    }

    #[test]
    fn batch_engine_matches_row_engine_exactly() {
        let (db, graph) = setup();
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::Merge] {
            let plan = PhysicalPlan::new(PlanNode::Join {
                algo,
                conds: vec![0],
                left: Box::new(scan_node(0)),
                right: Box::new(scan_node(1)),
            });
            let batch = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
            let rows = execute_rows(&db, &graph, &plan, ExecConfig::default()).unwrap();
            let mut b = batch.rows.clone();
            let mut r = rows.rows.clone();
            b.sort();
            r.sort();
            assert_eq!(b, r, "{algo:?} multiset");
            assert_eq!(batch.stats.work, rows.stats.work, "{algo:?} work");
            assert_eq!(batch.layout, rows.layout);
            assert_eq!(batch.schema, rows.schema);
        }
    }

    /// Two tables with nullable, string-typed join keys: a(k text?, v),
    /// b(k text?, w). NULLs on both sides; keys "x" (1×2) and "y" (1×1).
    fn null_setup() -> (Database, QueryGraph) {
        let mut cat = Catalog::new();
        let a = cat
            .add_table(TableSchema::new(
                "a",
                vec![
                    Column::nullable("k", ColumnType::Text),
                    Column::nullable("v", ColumnType::Int),
                ],
            ))
            .unwrap();
        let b = cat
            .add_table(TableSchema::new(
                "b",
                vec![
                    Column::nullable("k", ColumnType::Text),
                    Column::new("w", ColumnType::Int),
                ],
            ))
            .unwrap();
        let mut db = Database::new(cat);
        for row in [
            [Value::str("x"), Value::Int(1)],
            [Value::Null, Value::Int(2)],
            [Value::str("y"), Value::Null],
        ] {
            db.table_mut(a).unwrap().append_row(&row).unwrap();
        }
        for row in [
            [Value::str("x"), Value::Int(10)],
            [Value::str("x"), Value::Int(11)],
            [Value::Null, Value::Int(12)],
            [Value::str("y"), Value::Int(13)],
            [Value::str("z"), Value::Int(14)],
        ] {
            db.table_mut(b).unwrap().append_row(&row).unwrap();
        }
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: a,
                    alias: "a".into(),
                },
                Relation {
                    table: b,
                    alias: "b".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(0)),
            }],
            vec![],
            vec![
                AggExpr {
                    func: AggFunc::Count,
                    column: None,
                },
                AggExpr {
                    func: AggFunc::Sum,
                    column: Some(BoundColumn::new(RelId(0), ColumnId(1))),
                },
            ],
            vec![],
        );
        (db, graph)
    }

    #[test]
    fn null_keys_never_match_in_any_join_algorithm() {
        let (db, graph) = null_setup();
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::Merge] {
            let plan = PhysicalPlan::new(PlanNode::Join {
                algo,
                conds: vec![0],
                left: Box::new(scan_node(0)),
                right: Box::new(scan_node(1)),
            });
            let out = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
            // "x": 1×2, "y": 1×1; the NULLs on both sides match nothing.
            assert_eq!(out.rows.len(), 3, "{algo:?}");
            assert!(
                out.rows.iter().all(|r| !r[0].is_null() && !r[2].is_null()),
                "{algo:?} emitted a NULL-keyed match"
            );
            // And the row engine agrees bit-for-bit.
            let rows = execute_rows(&db, &graph, &plan, ExecConfig::default()).unwrap();
            let (mut bs, mut rs) = (out.rows.clone(), rows.rows.clone());
            bs.sort();
            rs.sort();
            assert_eq!(bs, rs, "{algo:?}");
            assert_eq!(out.stats.work, rows.stats.work, "{algo:?}");
            // As does the parallel evaluator, in exact row order —
            // NULL build/probe keys must stay unmatched there too.
            let cfg = ExecConfig::default().threads(4).morsel_rows(1);
            let par = execute(&db, &graph, &plan, cfg).unwrap();
            assert_eq!(par.rows, out.rows, "{algo:?} parallel");
            assert_eq!(par.stats.work, out.stats.work, "{algo:?} parallel work");
        }
    }

    #[test]
    fn aggregates_skip_null_inputs_in_batch_engine() {
        let (db, graph) = null_setup();
        let plan = PhysicalPlan::new(PlanNode::Aggregate {
            algo: AggAlgo::Hash,
            input: Box::new(PlanNode::Join {
                algo: JoinAlgo::Hash,
                conds: vec![0],
                left: Box::new(scan_node(0)),
                right: Box::new(scan_node(1)),
            }),
        });
        let out = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        assert_eq!(out.rows.len(), 1);
        // COUNT(*) counts all 3 joined rows; SUM(a.v) skips the NULL v
        // of the "y" row: 1 + 1 = 2.
        assert_eq!(out.rows[0][0], Value::Int(3));
        assert_eq!(out.rows[0][1], Value::Float(2.0));
    }

    #[test]
    fn unbuilt_index_surfaces_index_not_built() {
        let (db, mut graph) = setup();
        graph = QueryGraph::new(
            graph.relations().to_vec(),
            graph.joins().to_vec(),
            vec![Selection {
                column: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Lt,
                value: Lit::Int(10),
            }],
            graph.aggregates().to_vec(),
            vec![],
        );
        // Same catalog, fresh database whose indexes were never built.
        let unbuilt = Database::new(db.catalog().clone());
        let plan = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::Hash,
            conds: vec![0],
            left: Box::new(PlanNode::Scan {
                rel: RelId(0),
                path: AccessPath::IndexScan {
                    index: hfqo_catalog::IndexId(0),
                    driving_selection: 0,
                },
            }),
            right: Box::new(scan_node(1)),
        });
        let err = execute(&unbuilt, &graph, &plan, ExecConfig::default()).unwrap_err();
        assert!(matches!(err, ExecError::IndexNotBuilt(_)));
    }

    #[test]
    fn sum_over_text_surfaces_bad_aggregate() {
        let (db, graph) = null_setup();
        // SUM over the Text key column.
        let graph = QueryGraph::new(
            graph.relations().to_vec(),
            graph.joins().to_vec(),
            vec![],
            vec![AggExpr {
                func: AggFunc::Sum,
                column: Some(BoundColumn::new(RelId(0), ColumnId(0))),
            }],
            vec![],
        );
        let plan = PhysicalPlan::new(PlanNode::Aggregate {
            algo: AggAlgo::Hash,
            input: Box::new(PlanNode::Join {
                algo: JoinAlgo::Hash,
                conds: vec![0],
                left: Box::new(scan_node(0)),
                right: Box::new(scan_node(1)),
            }),
        });
        let err = execute(&db, &graph, &plan, ExecConfig::default()).unwrap_err();
        assert!(matches!(err, ExecError::BadAggregate(_)));
    }

    #[test]
    fn stats_only_execution_matches_full_execution() {
        let (db, graph) = setup();
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::Merge] {
            let plan = PhysicalPlan::new(PlanNode::Join {
                algo,
                conds: vec![0],
                left: Box::new(scan_node(0)),
                right: Box::new(scan_node(1)),
            });
            let full = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
            let (rows, work) =
                execute_for_stats(&db, &graph, &plan, ExecConfig::default()).unwrap();
            // Work charges are column-independent: the zero-column
            // pipeline must observe the identical totals.
            assert_eq!(rows, full.rows.len(), "{algo:?}");
            assert_eq!(work, full.stats.work, "{algo:?}");
        }
        // Stats-only execution still validates.
        let incomplete = PhysicalPlan::new(scan_node(0));
        assert!(matches!(
            execute_for_stats(&db, &graph, &incomplete, ExecConfig::default()),
            Err(ExecError::Plan(_))
        ));
    }

    #[test]
    fn aggregate_schema_names_keys_and_values() {
        let (db, graph) = setup();
        let plan = PhysicalPlan::new(PlanNode::Aggregate {
            algo: AggAlgo::Hash,
            input: Box::new(PlanNode::Join {
                algo: JoinAlgo::Hash,
                conds: vec![0],
                left: Box::new(scan_node(0)),
                right: Box::new(scan_node(1)),
            }),
        });
        let out = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        assert_eq!(out.schema.columns.len(), 1);
        assert_eq!(out.schema.columns[0].name(), "count(*)");
        assert_eq!(out.schema.columns[0].ty(), ColumnType::Int);
        assert_eq!(out.schema.to_string(), "count(*)");
        // Non-aggregated plans list base columns.
        let join_only = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::Hash,
            conds: vec![0],
            left: Box::new(scan_node(0)),
            right: Box::new(scan_node(1)),
        });
        let out = execute(&db, &graph, &join_only, ExecConfig::default()).unwrap();
        let names: Vec<&str> = out.schema.columns.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["d.id", "d.attr", "f.id", "f.dim_id", "f.val"]);
        assert_eq!(out.rows[0].len(), out.schema.columns.len());
    }

    #[test]
    fn parallel_join_is_bit_identical_to_serial() {
        let (db, graph) = setup();
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::Merge] {
            let plan = PhysicalPlan::new(PlanNode::Join {
                algo,
                conds: vec![0],
                left: Box::new(scan_node(0)),
                right: Box::new(scan_node(1)),
            });
            let serial = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
            for threads in [2, 4] {
                for morsel in [1, 7, 64, 4096] {
                    let cfg = ExecConfig::default().threads(threads).morsel_rows(morsel);
                    let par = execute(&db, &graph, &plan, cfg).unwrap();
                    // Exact row ORDER, not just the multiset: the
                    // parallel evaluator reassembles morsel outputs in
                    // order, so the full result must match bitwise.
                    assert_eq!(par.rows, serial.rows, "{algo:?} t={threads} m={morsel}");
                    assert_eq!(
                        par.stats.work, serial.stats.work,
                        "{algo:?} t={threads} m={morsel}"
                    );
                    assert_eq!(par.layout, serial.layout);
                    assert_eq!(par.schema, serial.schema);
                }
            }
        }
    }

    /// `ExecStats::work` is part of the reward signal, so it must not
    /// depend on the thread count.
    #[test]
    fn work_is_identical_across_thread_counts() {
        let (db, graph) = setup();
        let plan = PhysicalPlan::new(PlanNode::Aggregate {
            algo: AggAlgo::Hash,
            input: Box::new(PlanNode::Join {
                algo: JoinAlgo::Hash,
                conds: vec![0],
                left: Box::new(scan_node(1)),
                right: Box::new(scan_node(0)),
            }),
        });
        let outs: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&t| execute(&db, &graph, &plan, ExecConfig::default().threads(t)).unwrap())
            .collect();
        for out in &outs[1..] {
            assert_eq!(out.rows, outs[0].rows);
            assert_eq!(out.stats.work, outs[0].stats.work);
        }
    }

    #[test]
    fn parallel_aggregate_matches_serial_bitwise() {
        let (db, graph) = null_setup();
        for algo in [AggAlgo::Hash, AggAlgo::Sort] {
            let plan = PhysicalPlan::new(PlanNode::Aggregate {
                algo,
                input: Box::new(PlanNode::Join {
                    algo: JoinAlgo::Hash,
                    conds: vec![0],
                    left: Box::new(scan_node(0)),
                    right: Box::new(scan_node(1)),
                }),
            });
            let serial = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
            let cfg = ExecConfig::default().threads(4).morsel_rows(2);
            let par = execute(&db, &graph, &plan, cfg).unwrap();
            // One output row (no GROUP BY); the float SUM bits must
            // match exactly because the fold order is preserved.
            assert_eq!(par.rows, serial.rows, "{algo:?}");
            assert_eq!(par.stats.work, serial.stats.work, "{algo:?}");
        }
    }

    #[test]
    fn parallel_index_scan_matches_serial() {
        let (db, mut graph) = setup();
        graph = QueryGraph::new(
            graph.relations().to_vec(),
            graph.joins().to_vec(),
            vec![Selection {
                column: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Lt,
                value: Lit::Int(10),
            }],
            graph.aggregates().to_vec(),
            vec![],
        );
        let plan = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::Hash,
            conds: vec![0],
            left: Box::new(PlanNode::Scan {
                rel: RelId(0),
                path: AccessPath::IndexScan {
                    index: hfqo_catalog::IndexId(0),
                    driving_selection: 0,
                },
            }),
            right: Box::new(scan_node(1)),
        });
        let serial = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        let par = execute(&db, &graph, &plan, ExecConfig::default().threads(4)).unwrap();
        assert_eq!(serial.rows.len(), 100);
        assert_eq!(par.rows, serial.rows);
        assert_eq!(par.stats.work, serial.stats.work);
    }

    #[test]
    fn parallel_budget_abort_matches_serial() {
        let (db, graph) = setup();
        let cross = PhysicalPlan::new(PlanNode::Join {
            algo: JoinAlgo::NestedLoop,
            conds: vec![],
            left: Box::new(scan_node(0)),
            right: Box::new(scan_node(1)),
        });
        assert!(matches!(
            execute(&db, &graph, &cross, ExecConfig::with_budget(300)),
            Err(ExecError::BudgetExceeded { budget: 300, .. })
        ));
        // The parallel evaluator charges the same totals, so it aborts
        // exactly when the serial engine does.
        let err =
            execute(&db, &graph, &cross, ExecConfig::with_budget(300).threads(4)).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { budget: 300, .. }));
    }
}
