//! Morsel-driven parallel plan evaluation.
//!
//! When [`ExecConfig::threads`] exceeds 1, [`crate::execute`] dispatches
//! here instead of pulling the serial operator pipeline. The plan tree
//! is evaluated stage by stage — scans, join builds and probes, and
//! aggregation each fan out over a team of `threads` workers pulling
//! fixed-size **morsels** (row ranges) from a shared atomic dispenser —
//! and every stage's output is reassembled in morsel order before the
//! next stage starts.
//!
//! ## Determinism contract
//!
//! The parallel evaluator is *bit-identical* to the serial engine at any
//! thread count and any morsel size, which the equivalence suite
//! asserts. Three mechanisms make that hold:
//!
//! * **Order-preserving reassembly.** Workers tag each morsel's output
//!   with the morsel index; the stage concatenates them in index order,
//!   so the row stream entering the next stage equals the serial
//!   engine's. Join candidate lists are likewise merged in build-row
//!   order, so probes emit matches in the serial order.
//! * **Partitioned state instead of shared state.** Hash-join builds and
//!   grouped aggregation split their keys across partitions by a
//!   deterministic hash (`DefaultHasher` with its fixed default keys).
//!   Each partition is built and folded by exactly one worker, with
//!   partition-local row lists that preserve global input order — a
//!   group's accumulator folds its rows in the same order as the serial
//!   engine, so even float `SUM`/`AVG` bits match. No worker ever
//!   writes state another worker reads.
//! * **Charge-total equality.** Workers accumulate work charges locally
//!   and flush them to one shared atomic counter (every
//!   `FLUSH_EVERY` units and at worker exit), so the final total
//!   equals the serial engine's charge total exactly: `u64` addition is
//!   commutative, and the per-row/per-candidate charge rules are the
//!   same code paths. A plan aborts with `BudgetExceeded` under the
//!   parallel evaluator iff it aborts under the serial one; only the
//!   `work_done` overshoot reported on abort may differ.
//!
//! Sort-merge joins sort their two sides concurrently (same stable sort,
//! same comparator as the serial engine) but advance the merge cursors
//! serially — the merge loop is inherently sequential and its charge
//! pattern (one unit per cursor comparison) depends on the traversal.
//! Global (non-`GROUP BY`) aggregates also fold serially: float
//! accumulation is not associative, and a tree reduction would change
//! result bits.
//!
//! [`ExecConfig::threads`]: crate::ExecConfig::threads

use crate::batch::Projection;
use crate::error::ExecError;
use crate::executor::ExecConfig;
use crate::operator::{aggregate_inputs, scan_projection, ColSet};
use crate::ops::agg::{Acc, AggSpec};
use crate::ops::join::{join_output, Side};
use crate::ops::scan::ScanSpec;
use crate::ops::{eval_cmp_cols, first_eq, resolve_conds, SlotCond};
use crate::row::Row;
use hfqo_catalog::ColumnType;
use hfqo_query::{AccessPath, AggAlgo, JoinAlgo, PlanNode, QueryError, QueryGraph, RelId};
use hfqo_storage::{ColumnVector, Database, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};

/// How many locally-accumulated work units a worker buffers before
/// flushing to the shared budget counter. Bounds both atomic contention
/// (one `fetch_add` per `FLUSH_EVERY` units) and how far a worker can
/// run past an exhausted budget before noticing.
const FLUSH_EVERY: u64 = 4096;

/// The per-query work counter shared by all workers.
struct SharedBudget {
    used: AtomicU64,
    limit: u64,
}

impl SharedBudget {
    fn new(limit: u64) -> Self {
        Self {
            used: AtomicU64::new(0),
            limit,
        }
    }

    /// Adds `n` units; fails when the post-add total exceeds the limit.
    fn add(&self, n: u64) -> Result<(), ExecError> {
        if n == 0 {
            return Ok(());
        }
        // Relaxed: a commutative sum — every interleaving of the
        // fetch_adds yields the same total, and the scope join orders
        // the final read; no other memory piggybacks on this counter.
        let total = self.used.fetch_add(n, AtomicOrdering::Relaxed) + n;
        if total > self.limit {
            Err(ExecError::BudgetExceeded {
                work_done: total,
                budget: self.limit,
            })
        } else {
            Ok(())
        }
    }

    fn used(&self) -> u64 {
        // Relaxed: read after the worker-scope join, which already
        // ordered every flush.
        self.used.load(AtomicOrdering::Relaxed)
    }
}

/// Worker-local charge accumulator. Once the shared counter passes the
/// limit it can only grow, so every worker's next flush also fails —
/// an exhausted budget stops the whole team within one flush window.
struct Charger<'a> {
    shared: &'a SharedBudget,
    pending: u64,
}

impl<'a> Charger<'a> {
    fn new(shared: &'a SharedBudget) -> Self {
        Self { shared, pending: 0 }
    }

    #[inline]
    fn charge(&mut self, n: u64) -> Result<(), ExecError> {
        self.pending += n;
        if self.pending >= FLUSH_EVERY {
            self.flush()
        } else {
            Ok(())
        }
    }

    /// Pushes pending charges to the shared counter. Must be called at
    /// worker exit so success leaves the shared total equal to the
    /// serial engine's.
    fn flush(&mut self) -> Result<(), ExecError> {
        self.shared.add(std::mem::take(&mut self.pending))
    }
}

/// The shared morsel dispenser: workers claim fixed-size row ranges
/// with one atomic increment, so work distribution balances itself
/// without a scheduler.
struct Morsels {
    next: AtomicUsize,
    count: usize,
    size: usize,
    total: usize,
}

impl Morsels {
    fn new(total: usize, size: usize) -> Self {
        let size = size.max(1);
        Self {
            next: AtomicUsize::new(0),
            count: total.div_ceil(size),
            size,
            total,
        }
    }

    /// Worker-team size for this dispenser: spawning more workers than
    /// morsels only creates threads with nothing to claim.
    fn team(&self, threads: usize) -> usize {
        threads.min(self.count.max(1))
    }

    /// Claims the next unclaimed morsel: its index and row range.
    fn claim(&self) -> Option<(usize, Range<usize>)> {
        // Relaxed: the RMW's atomicity alone makes every index unique,
        // which is the entire claim protocol; the claimed rows are
        // read-only input published before the workers were spawned.
        let idx = self.next.fetch_add(1, AtomicOrdering::Relaxed);
        if idx >= self.count {
            return None;
        }
        let start = idx * self.size;
        Some((idx, start..(start + self.size).min(self.total)))
    }
}

/// Runs `work` on `threads` scoped workers and collects their results
/// in worker order; the lowest-indexed failure wins.
fn run_workers<T, F>(threads: usize, work: F) -> Result<Vec<T>, ExecError>
where
    T: Send,
    F: Fn(usize) -> Result<T, ExecError> + Sync,
{
    if threads <= 1 {
        return Ok(vec![work(0)?]);
    }
    let results: Vec<Result<T, ExecError>> = std::thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = (0..threads).map(|w| s.spawn(move || work(w))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

/// Rows produced by one unit of parallel work — a morsel's output, or a
/// whole stage's after reassembly. The row count is tracked separately
/// because zero-width outputs (pure counting pipelines) exist.
struct Chunk {
    cols: Vec<ColumnVector>,
    rows: usize,
}

impl Chunk {
    fn empty(types: &[ColumnType]) -> Self {
        Self {
            cols: types.iter().map(|&t| ColumnVector::new(t)).collect(),
            rows: 0,
        }
    }
}

/// Concatenates indexed chunks in index order — the reassembly step
/// that makes every parallel stage order-preserving.
fn concat_indexed(types: &[ColumnType], mut chunks: Vec<(usize, Chunk)>) -> Chunk {
    chunks.sort_by_key(|&(idx, _)| idx);
    let mut out = Chunk::empty(types);
    for (_, ch) in chunks {
        out.rows += ch.rows;
        for (dst, src) in out.cols.iter_mut().zip(&ch.cols) {
            dst.append_column(src);
        }
    }
    out
}

/// A fully-evaluated plan node: its projection and materialised rows.
struct NodeOut {
    proj: Projection,
    types: Vec<ColumnType>,
    data: Chunk,
}

struct Ctx<'a> {
    db: &'a Database,
    graph: &'a QueryGraph,
    threads: usize,
    morsel_rows: usize,
    budget: &'a SharedBudget,
}

/// Evaluates `root` with the morsel-driven parallel engine and
/// materialises the output rows. Results, row order, and the work total
/// are identical to the serial pipeline in [`crate::execute`].
pub(crate) fn execute_materialized(
    db: &Database,
    graph: &QueryGraph,
    root: &PlanNode,
    required: &ColSet,
    config: ExecConfig,
) -> Result<(Vec<Row>, u64), ExecError> {
    let budget = SharedBudget::new(config.work_budget);
    // Worker teams never exceed the machine's parallelism: extra
    // threads on an oversubscribed core only add scheduling overhead,
    // and results are identical at any team size by construction.
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ctx = Ctx {
        db,
        graph,
        threads: config.threads.clamp(1, hw),
        morsel_rows: config.morsel_rows.max(1),
        budget: &budget,
    };
    let out = match root {
        PlanNode::Aggregate { algo, input } => {
            let child = eval_node(&ctx, input, &aggregate_inputs(graph))?;
            eval_aggregate(&ctx, *algo, &child)?
        }
        node => eval_node(&ctx, node, required)?.data,
    };
    // Column-wise export, like the serial facade's `Batch::export_rows`.
    let mut rows: Vec<Row> = Vec::new();
    rows.resize_with(out.rows, || Vec::with_capacity(out.cols.len()));
    for col in &out.cols {
        col.values_onto(&mut rows);
    }
    Ok((rows, budget.used()))
}

fn eval_node(ctx: &Ctx<'_>, node: &PlanNode, required: &ColSet) -> Result<NodeOut, ExecError> {
    match node {
        PlanNode::Scan { rel, path } => eval_scan(ctx, *rel, path, required),
        PlanNode::Join {
            algo,
            conds,
            left,
            right,
        } => {
            // Children must additionally carry this join's condition
            // columns, exactly like the serial pipeline builder.
            let mut cond_cols = Vec::new();
            for &c in conds.iter() {
                let edge = ctx.graph.joins().get(c).ok_or_else(|| {
                    QueryError::InvalidPlan(format!("join cond #{c} out of range"))
                })?;
                cond_cols.push(edge.left);
                cond_cols.push(edge.right);
            }
            let child_required = required.with(cond_cols);
            let left = eval_node(ctx, left, &child_required)?;
            let right = eval_node(ctx, right, &child_required)?;
            eval_join(ctx, *algo, conds, &left, &right, required)
        }
        PlanNode::Aggregate { .. } => {
            Err(QueryError::InvalidPlan("aggregate below the plan root".into()).into())
        }
    }
}

/// Parallel scan: workers claim morsels of the visit range, filter and
/// gather locally, and the outputs reassemble in morsel order (= table
/// order). Charges one unit per visited row plus one per emitted row,
/// like the serial scan.
fn eval_scan(
    ctx: &Ctx<'_>,
    rel: RelId,
    path: &AccessPath,
    required: &ColSet,
) -> Result<NodeOut, ExecError> {
    let proj = scan_projection(ctx.graph, ctx.db, rel, required);
    let spec = ScanSpec::new(ctx.db, ctx.graph, rel, path, &proj)?;
    let types = proj.column_types(ctx.graph, ctx.db.catalog());
    let morsels = Morsels::new(spec.visit_count(), ctx.morsel_rows);
    let chunks = run_workers(morsels.team(ctx.threads), |_w| {
        let mut charger = Charger::new(ctx.budget);
        let mut out: Vec<(usize, Chunk)> = Vec::new();
        let mut rid_buf: Vec<u32> = Vec::new();
        while let Some((idx, range)) = morsels.claim() {
            charger.charge(range.len() as u64)?; // visited rows
            let mut chunk = Chunk::empty(&types);
            if spec.is_plain_seq() {
                // Unfiltered sequential morsels copy contiguous column
                // ranges — no row-id gather.
                chunk.rows = range.len();
                for (dst, src) in chunk.cols.iter_mut().zip(spec.projected_columns()) {
                    dst.append_range(src, range.start, range.len());
                }
            } else {
                // Same kernels as the serial scan: one selection vector
                // per morsel, then a column-wise bulk gather.
                rid_buf.clear();
                spec.filter_visits(range.start, range.len(), &mut rid_buf);
                chunk.rows = rid_buf.len();
                let spans = hfqo_storage::coalesce_spans(&rid_buf);
                for (dst, src) in chunk.cols.iter_mut().zip(spec.projected_columns()) {
                    match &spans {
                        Some(spans) => {
                            for &(start, len) in spans {
                                dst.append_range(src, start, len);
                            }
                        }
                        None => src.gather_into(&rid_buf, dst),
                    }
                }
            }
            charger.charge(chunk.rows as u64)?; // emitted rows
            out.push((idx, chunk));
        }
        charger.flush()?;
        Ok(out)
    })?;
    let data = concat_indexed(&types, chunks.into_iter().flatten().collect());
    Ok(NodeOut { proj, types, data })
}

fn eval_join(
    ctx: &Ctx<'_>,
    algo: JoinAlgo,
    conds: &[usize],
    left: &NodeOut,
    right: &NodeOut,
    required: &ColSet,
) -> Result<NodeOut, ExecError> {
    let slot_conds = resolve_conds(
        ctx.graph,
        conds,
        |c| left.proj.slot(c),
        |c| right.proj.slot(c),
    )?;
    let (proj, out_map) = join_output(&left.proj, &right.proj, required);
    let types = proj.column_types(ctx.graph, ctx.db.catalog());
    let data = match algo {
        JoinAlgo::Hash => hash_join(ctx, &slot_conds, &out_map, &types, left, right)?,
        JoinAlgo::NestedLoop => nested_join(ctx, &slot_conds, &out_map, &types, left, right)?,
        JoinAlgo::Merge => merge_join(ctx, &slot_conds, &out_map, &types, left, right)?,
    };
    Ok(NodeOut { proj, types, data })
}

/// Appends one joined output row gathered from the two inputs.
#[inline]
fn emit_row(
    chunk: &mut Chunk,
    out_map: &[Side],
    left: &[ColumnVector],
    l_row: usize,
    right: &[ColumnVector],
    r_row: usize,
) {
    for (dst, side) in chunk.cols.iter_mut().zip(out_map) {
        match side {
            Side::Left(s) => dst.push_from(&left[*s], l_row),
            Side::Right(s) => dst.push_from(&right[*s], r_row),
        }
    }
    chunk.rows += 1;
}

/// Deterministic partition of a key: `DefaultHasher` is keyed with
/// fixed constants, so the same key lands in the same partition on
/// every run at every thread count.
#[inline]
fn partition_of<T: Hash + ?Sized>(key: &T, mask: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & mask
}

/// One partition's hash table — the same integer fast path / `Value`
/// fallback split as the serial [`crate::ops::join`] key table.
enum PartTable {
    Int(HashMap<i64, Vec<u32>>),
    Any(HashMap<Value, Vec<u32>>),
}

/// Radix-partitioned hash join. Build rows are partitioned by key hash
/// in parallel (charging one unit per build row, NULL keys charged but
/// excluded, matching the serial build); each partition's table is then
/// built by one worker from a row list that preserves build order, so
/// every key's candidate list is in ascending build-row order — the
/// serial insertion order. Probe morsels look up their partition's
/// table without touching shared state and emit in probe order.
fn hash_join(
    ctx: &Ctx<'_>,
    conds: &[SlotCond],
    out_map: &[Side],
    types: &[ColumnType],
    left: &NodeOut,
    right: &NodeOut,
) -> Result<Chunk, ExecError> {
    let key = first_eq(conds).ok_or_else(|| {
        QueryError::InvalidPlan("hash join requires an equality condition".into())
    })?;
    let parts = (ctx.threads * 4).next_power_of_two();
    let mask = parts - 1;
    let int_keyed = right.types.get(key.r_slot) == Some(&ColumnType::Int);
    let build_col = &right.data.cols[key.r_slot];

    // Build partition pass.
    let morsels = Morsels::new(right.data.rows, ctx.morsel_rows);
    let parted = run_workers(morsels.team(ctx.threads), |_w| {
        let mut charger = Charger::new(ctx.budget);
        let mut out: Vec<(usize, Vec<Vec<u32>>)> = Vec::new();
        while let Some((idx, range)) = morsels.claim() {
            charger.charge(range.len() as u64)?; // one per build row
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); parts];
            for row in range {
                if int_keyed {
                    if let Some(k) = build_col.int_at(row) {
                        buckets[partition_of(&k, mask)].push(row as u32);
                    }
                } else {
                    let k = build_col.get(row);
                    if !k.is_null() {
                        buckets[partition_of(&k, mask)].push(row as u32);
                    }
                }
            }
            out.push((idx, buckets));
        }
        charger.flush()?;
        Ok(out)
    })?;
    // Merge per-morsel buckets in morsel order: each partition's row
    // list stays ascending, so candidate lists match the serial table.
    let mut flat: Vec<(usize, Vec<Vec<u32>>)> = parted.into_iter().flatten().collect();
    flat.sort_by_key(|&(idx, _)| idx);
    let mut partitions: Vec<Vec<u32>> = vec![Vec::new(); parts];
    for (_, buckets) in flat {
        for (p, rows) in buckets.into_iter().enumerate() {
            partitions[p].extend(rows);
        }
    }

    // Per-partition table build — charge-free (the build was charged in
    // the partition pass), one worker per partition.
    let jobs = Morsels::new(parts, 1);
    let built = run_workers(ctx.threads.min(parts), |_w| {
        let mut out: Vec<(usize, PartTable)> = Vec::new();
        while let Some((p, _)) = jobs.claim() {
            let table = if int_keyed {
                let mut t: HashMap<i64, Vec<u32>> = HashMap::new();
                for &row in &partitions[p] {
                    if let Some(k) = build_col.int_at(row as usize) {
                        t.entry(k).or_default().push(row);
                    }
                }
                PartTable::Int(t)
            } else {
                let mut t: HashMap<Value, Vec<u32>> = HashMap::new();
                for &row in &partitions[p] {
                    t.entry(build_col.get(row as usize)).or_default().push(row);
                }
                PartTable::Any(t)
            };
            out.push((p, table));
        }
        Ok(out)
    })?;
    let mut slots: Vec<Option<PartTable>> = (0..parts).map(|_| None).collect();
    for (p, t) in built.into_iter().flatten() {
        slots[p] = Some(t);
    }
    let tables: Vec<PartTable> = slots
        .into_iter()
        .map(|t| t.expect("every partition built exactly once"))
        .collect();

    // Probe pass: one unit per probe row, one per candidate, one per
    // emitted row — the serial probe charges.
    let probe_col = &left.data.cols[key.l_slot];
    let morsels = Morsels::new(left.data.rows, ctx.morsel_rows);
    let chunks = run_workers(morsels.team(ctx.threads), |_w| {
        let mut charger = Charger::new(ctx.budget);
        let mut out: Vec<(usize, Chunk)> = Vec::new();
        while let Some((idx, range)) = morsels.claim() {
            charger.charge(range.len() as u64)?;
            let mut chunk = Chunk::empty(types);
            for row in range {
                let candidates = if int_keyed {
                    probe_col
                        .int_at(row)
                        .and_then(|k| match &tables[partition_of(&k, mask)] {
                            PartTable::Int(t) => t.get(&k),
                            PartTable::Any(_) => unreachable!("int-keyed build"),
                        })
                } else {
                    let k = probe_col.get(row);
                    if k.is_null() {
                        None
                    } else {
                        match &tables[partition_of(&k, mask)] {
                            PartTable::Any(t) => t.get(&k),
                            PartTable::Int(_) => unreachable!("value-keyed build"),
                        }
                    }
                };
                if let Some(candidates) = candidates {
                    for &b_row in candidates {
                        charger.charge(1)?;
                        let passes = conds.iter().all(|c| {
                            eval_cmp_cols(
                                c.op,
                                &left.data.cols[c.l_slot],
                                row,
                                &right.data.cols[c.r_slot],
                                b_row as usize,
                            )
                        });
                        if passes {
                            emit_row(
                                &mut chunk,
                                out_map,
                                &left.data.cols,
                                row,
                                &right.data.cols,
                                b_row as usize,
                            );
                            charger.charge(1)?;
                        }
                    }
                }
            }
            out.push((idx, chunk));
        }
        charger.flush()?;
        Ok(out)
    })?;
    Ok(concat_indexed(
        types,
        chunks.into_iter().flatten().collect(),
    ))
}

/// Parallel nested-loop join: probe morsels against the fully
/// materialised inner side. One unit per (probe, inner) pair, one per
/// emitted row.
fn nested_join(
    ctx: &Ctx<'_>,
    conds: &[SlotCond],
    out_map: &[Side],
    types: &[ColumnType],
    left: &NodeOut,
    right: &NodeOut,
) -> Result<Chunk, ExecError> {
    let inner_rows = right.data.rows;
    let morsels = Morsels::new(left.data.rows, ctx.morsel_rows);
    let chunks = run_workers(morsels.team(ctx.threads), |_w| {
        let mut charger = Charger::new(ctx.budget);
        let mut out: Vec<(usize, Chunk)> = Vec::new();
        while let Some((idx, range)) = morsels.claim() {
            let mut chunk = Chunk::empty(types);
            for row in range {
                for b_row in 0..inner_rows {
                    charger.charge(1)?;
                    let passes = conds.iter().all(|c| {
                        eval_cmp_cols(
                            c.op,
                            &left.data.cols[c.l_slot],
                            row,
                            &right.data.cols[c.r_slot],
                            b_row,
                        )
                    });
                    if passes {
                        emit_row(
                            &mut chunk,
                            out_map,
                            &left.data.cols,
                            row,
                            &right.data.cols,
                            b_row,
                        );
                        charger.charge(1)?;
                    }
                }
            }
            out.push((idx, chunk));
        }
        charger.flush()?;
        Ok(out)
    })?;
    Ok(concat_indexed(
        types,
        chunks.into_iter().flatten().collect(),
    ))
}

/// Sort-merge join: the two key sorts run concurrently (same stable
/// sort and comparator as the serial engine, so the permutations are
/// identical); the merge itself advances serially because its charge
/// pattern — one unit per cursor comparison — depends on the traversal.
fn merge_join(
    ctx: &Ctx<'_>,
    conds: &[SlotCond],
    out_map: &[Side],
    types: &[ColumnType],
    left: &NodeOut,
    right: &NodeOut,
) -> Result<Chunk, ExecError> {
    let key = first_eq(conds).ok_or_else(|| {
        QueryError::InvalidPlan("merge join requires an equality condition".into())
    })?;
    let lcol = &left.data.cols[key.l_slot];
    let rcol = &right.data.cols[key.r_slot];
    let mut li: Vec<u32> = (0..left.data.rows as u32)
        .filter(|&r| !lcol.is_null(r as usize))
        .collect();
    let mut ri: Vec<u32> = (0..right.data.rows as u32)
        .filter(|&r| !rcol.is_null(r as usize))
        .collect();
    ctx.budget.add(((li.len() + ri.len()) as u64).max(1))?;
    {
        let (li_ref, ri_ref) = (&mut li, &mut ri);
        let mut sort_left =
            move || li_ref.sort_by(|&a, &b| lcol.total_cmp_at(a as usize, lcol, b as usize));
        let mut sort_right =
            move || ri_ref.sort_by(|&a, &b| rcol.total_cmp_at(a as usize, rcol, b as usize));
        if ctx.threads > 1 {
            std::thread::scope(|s| {
                s.spawn(sort_left);
                sort_right();
            });
        } else {
            sort_left();
            sort_right();
        }
    }

    let mut chunk = Chunk::empty(types);
    let mut charger = Charger::new(ctx.budget);
    let (mut i, mut j) = (0usize, 0usize);
    while i < li.len() && j < ri.len() {
        charger.charge(1)?;
        let (l_row0, r_row0) = (li[i] as usize, ri[j] as usize);
        match lcol.total_cmp_at(l_row0, rcol, r_row0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let i_end = (i..li.len())
                    .take_while(|&x| lcol.total_cmp_at(li[x] as usize, lcol, l_row0).is_eq())
                    .last()
                    .unwrap_or(i)
                    + 1;
                let j_end = (j..ri.len())
                    .take_while(|&x| rcol.total_cmp_at(ri[x] as usize, rcol, r_row0).is_eq())
                    .last()
                    .unwrap_or(j)
                    + 1;
                for &lx in &li[i..i_end] {
                    for &rx in &ri[j..j_end] {
                        charger.charge(1)?;
                        let (l_row, r_row) = (lx as usize, rx as usize);
                        let passes = conds.iter().all(|c| {
                            eval_cmp_cols(
                                c.op,
                                &left.data.cols[c.l_slot],
                                l_row,
                                &right.data.cols[c.r_slot],
                                r_row,
                            )
                        });
                        if passes {
                            emit_row(
                                &mut chunk,
                                out_map,
                                &left.data.cols,
                                l_row,
                                &right.data.cols,
                                r_row,
                            );
                            charger.charge(1)?;
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    charger.flush()?;
    Ok(chunk)
}

/// Parallel aggregation. Grouped inputs are partitioned by key hash
/// (order-preserving within each partition, one unit per input row) and
/// folded partition-by-partition — a group's rows land wholly in one
/// partition, so every accumulator folds in global input order and
/// float sums are bit-identical to the serial engine. Global aggregates
/// fold serially for the same reason.
fn eval_aggregate(ctx: &Ctx<'_>, algo: AggAlgo, child: &NodeOut) -> Result<Chunk, ExecError> {
    let spec = AggSpec::resolve(ctx.graph, ctx.db.catalog(), &child.proj)?;
    let input_rows = child.data.rows;

    let mut out_rows: Vec<Vec<Value>> = if spec.key_slots.is_empty() {
        ctx.budget.add(input_rows as u64)?;
        let mut accs = spec.new_accs();
        for row in 0..input_rows {
            for (acc, slot) in accs.iter_mut().zip(&spec.agg_slots) {
                let v = slot.map(|s| child.data.cols[s].get(row));
                acc.update(v.as_ref())?;
            }
        }
        // An aggregate over zero rows with no GROUP BY still yields one
        // row (SQL semantics: COUNT(*) = 0) — `new_accs` covers it.
        vec![accs.into_iter().map(Acc::finish).collect()]
    } else {
        let parts = (ctx.threads * 4).next_power_of_two();
        let mask = parts - 1;
        let key_cols: Vec<&ColumnVector> = spec
            .key_slots
            .iter()
            .map(|&s| &child.data.cols[s])
            .collect();

        // Partition pass (one unit per input row, the serial grouping
        // charge).
        let morsels = Morsels::new(input_rows, ctx.morsel_rows);
        let parted = run_workers(morsels.team(ctx.threads), |_w| {
            let mut charger = Charger::new(ctx.budget);
            let mut out: Vec<(usize, Vec<Vec<u32>>)> = Vec::new();
            while let Some((idx, range)) = morsels.claim() {
                charger.charge(range.len() as u64)?;
                let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); parts];
                for row in range {
                    let mut h = DefaultHasher::new();
                    for col in &key_cols {
                        col.get(row).hash(&mut h);
                    }
                    buckets[(h.finish() as usize) & mask].push(row as u32);
                }
                out.push((idx, buckets));
            }
            charger.flush()?;
            Ok(out)
        })?;
        let mut flat: Vec<(usize, Vec<Vec<u32>>)> = parted.into_iter().flatten().collect();
        flat.sort_by_key(|&(idx, _)| idx);
        let mut partitions: Vec<Vec<u32>> = vec![Vec::new(); parts];
        for (_, buckets) in flat {
            for (p, rows) in buckets.into_iter().enumerate() {
                partitions[p].extend(rows);
            }
        }

        // Fold pass: disjoint key sets per partition, no accumulator
        // merging, charge-free (the input rows were charged above).
        let jobs = Morsels::new(parts, 1);
        let folded = run_workers(ctx.threads.min(parts), |_w| {
            let mut out: Vec<(usize, Vec<Vec<Value>>)> = Vec::new();
            while let Some((p, _)) = jobs.claim() {
                let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
                for &row in &partitions[p] {
                    let row = row as usize;
                    let k: Vec<Value> = spec
                        .key_slots
                        .iter()
                        .map(|&s| child.data.cols[s].get(row))
                        .collect();
                    let accs = groups.entry(k).or_insert_with(|| spec.new_accs());
                    for (acc, slot) in accs.iter_mut().zip(&spec.agg_slots) {
                        let v = slot.map(|s| child.data.cols[s].get(row));
                        acc.update(v.as_ref())?;
                    }
                }
                let rows: Vec<Vec<Value>> = groups
                    .into_iter()
                    .map(|(mut key, accs)| {
                        key.extend(accs.into_iter().map(Acc::finish));
                        key
                    })
                    .collect();
                out.push((p, rows));
            }
            Ok(out)
        })?;
        let mut flat: Vec<(usize, Vec<Vec<Value>>)> = folded.into_iter().flatten().collect();
        flat.sort_by_key(|&(p, _)| p);
        flat.into_iter().flat_map(|(_, rows)| rows).collect()
    };

    if algo == AggAlgo::Sort {
        // The sort's cost, charged on the input size like the serial
        // engines.
        ctx.budget.add(input_rows as u64)?;
        out_rows.sort();
    }
    ctx.budget.add(out_rows.len() as u64)?;
    let mut chunk = Chunk::empty(&spec.out_types);
    for row in &out_rows {
        for (col, v) in chunk.cols.iter_mut().zip(row) {
            let ok = col.push(v);
            debug_assert!(ok, "aggregate output value fits its column type");
        }
        chunk.rows += 1;
    }
    Ok(chunk)
}
