//! Rows and the layout that maps bound columns to row slots.

use hfqo_catalog::Catalog;
use hfqo_query::{BoundColumn, Lit, PlanNode, QueryGraph, RelId};
use hfqo_storage::Value;

/// A materialised row: the concatenated column values of every relation in
/// the producing subplan, in the subplan's leaf order.
pub type Row = Vec<Value>;

/// Maps `(relation, column)` to a slot in rows produced by a plan node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// `(relation, starting offset, arity)` per leaf, in leaf order.
    entries: Vec<(RelId, usize, usize)>,
    /// Total row width.
    width: usize,
}

impl Layout {
    /// Layout of rows produced by `node` (leaf order, full table arity per
    /// relation — the engine does not project early).
    pub fn for_node(node: &PlanNode, graph: &QueryGraph, catalog: &Catalog) -> Self {
        let mut entries = Vec::new();
        let mut offset = 0usize;
        collect(node, graph, catalog, &mut entries, &mut offset);
        Layout {
            entries,
            width: offset,
        }
    }

    /// Layout for a single relation.
    pub fn for_rel(rel: RelId, graph: &QueryGraph, catalog: &Catalog) -> Self {
        let arity = catalog
            .table(graph.relation(rel).table)
            .map(|t| t.arity())
            .unwrap_or(0);
        Layout {
            entries: vec![(rel, 0, arity)],
            width: arity,
        }
    }

    /// Concatenation of two layouts (left then right), as produced by a
    /// join node.
    pub fn concat(&self, right: &Layout) -> Layout {
        let mut entries = self.entries.clone();
        entries.extend(
            right
                .entries
                .iter()
                .map(|(rel, off, ar)| (*rel, off + self.width, *ar)),
        );
        Layout {
            entries,
            width: self.width + right.width,
        }
    }

    /// Slot of a bound column, if its relation is in this layout.
    #[inline]
    pub fn slot(&self, col: BoundColumn) -> Option<usize> {
        self.entries.iter().find_map(|(rel, off, ar)| {
            (*rel == col.rel && col.column.index() < *ar).then(|| off + col.column.index())
        })
    }

    /// Total number of slots.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Relations covered, in leaf order.
    pub fn relations(&self) -> impl Iterator<Item = RelId> + '_ {
        self.entries.iter().map(|(rel, _, _)| *rel)
    }
}

fn collect(
    node: &PlanNode,
    graph: &QueryGraph,
    catalog: &Catalog,
    entries: &mut Vec<(RelId, usize, usize)>,
    offset: &mut usize,
) {
    match node {
        PlanNode::Scan { rel, .. } => {
            let arity = catalog
                .table(graph.relation(*rel).table)
                .map(|t| t.arity())
                .unwrap_or(0);
            entries.push((*rel, *offset, arity));
            *offset += arity;
        }
        PlanNode::Join { left, right, .. } => {
            collect(left, graph, catalog, entries, offset);
            collect(right, graph, catalog, entries, offset);
        }
        PlanNode::Aggregate { input, .. } => collect(input, graph, catalog, entries, offset),
    }
}

/// Converts a predicate literal into a runtime value.
pub fn lit_to_value(lit: &Lit) -> Value {
    match lit {
        Lit::Int(v) => Value::Int(*v),
        Lit::Float(v) => Value::Float(*v),
        Lit::Str(s) => Value::str(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Column, ColumnId, ColumnType, TableSchema};
    use hfqo_query::{AccessPath, Relation};

    fn setup() -> (Catalog, QueryGraph) {
        let mut cat = Catalog::new();
        let a = cat
            .add_table(TableSchema::new(
                "a",
                vec![
                    Column::new("x", ColumnType::Int),
                    Column::new("y", ColumnType::Int),
                ],
            ))
            .unwrap();
        let b = cat
            .add_table(TableSchema::new(
                "b",
                vec![Column::new("z", ColumnType::Int)],
            ))
            .unwrap();
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: a,
                    alias: "a".into(),
                },
                Relation {
                    table: b,
                    alias: "b".into(),
                },
            ],
            vec![],
            vec![],
            vec![],
            vec![],
        );
        (cat, graph)
    }

    #[test]
    fn join_layout_concatenates() {
        let (cat, graph) = setup();
        let node = PlanNode::Join {
            algo: hfqo_query::JoinAlgo::NestedLoop,
            conds: vec![],
            left: Box::new(PlanNode::Scan {
                rel: RelId(0),
                path: AccessPath::SeqScan,
            }),
            right: Box::new(PlanNode::Scan {
                rel: RelId(1),
                path: AccessPath::SeqScan,
            }),
        };
        let layout = Layout::for_node(&node, &graph, &cat);
        assert_eq!(layout.width(), 3);
        assert_eq!(
            layout.slot(BoundColumn::new(RelId(0), ColumnId(1))),
            Some(1)
        );
        assert_eq!(
            layout.slot(BoundColumn::new(RelId(1), ColumnId(0))),
            Some(2)
        );
        assert_eq!(layout.slot(BoundColumn::new(RelId(1), ColumnId(5))), None);
        assert_eq!(
            layout.relations().collect::<Vec<_>>(),
            vec![RelId(0), RelId(1)]
        );
    }

    #[test]
    fn concat_matches_join_order() {
        let (cat, graph) = setup();
        let la = Layout::for_rel(RelId(0), &graph, &cat);
        let lb = Layout::for_rel(RelId(1), &graph, &cat);
        let ba = lb.concat(&la);
        assert_eq!(ba.slot(BoundColumn::new(RelId(1), ColumnId(0))), Some(0));
        assert_eq!(ba.slot(BoundColumn::new(RelId(0), ColumnId(0))), Some(1));
    }

    #[test]
    fn lit_conversion() {
        assert_eq!(lit_to_value(&Lit::Int(3)), Value::Int(3));
        assert_eq!(lit_to_value(&Lit::Float(0.5)), Value::Float(0.5));
        assert_eq!(lit_to_value(&Lit::Str("s".into())), Value::str("s"));
    }
}
