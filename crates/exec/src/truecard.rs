//! Execution-backed true cardinalities.

use crate::error::ExecError;
use crate::executor::ExecConfig;
use hfqo_query::{AccessPath, JoinAlgo, PhysicalPlan, PlanNode, QueryGraph, RelId, RelSet};
use hfqo_sql::CompareOp;
use hfqo_stats::CardinalitySource;
use hfqo_storage::Database;
use std::cell::RefCell;
use std::collections::HashMap;

/// A [`CardinalitySource`] that *executes* sub-joins to count their true
/// output sizes, memoising per relation subset.
///
/// One oracle is bound to one query: construct it per [`QueryGraph`] (the
/// memo is keyed by [`RelSet`], which is only meaningful within a single
/// query). Counting plans are built greedily along join edges and run with
/// a work budget; a subset whose true size busts the budget reports the
/// budget itself — a deliberate floor that keeps catastrophic plans
/// looking catastrophic without unbounded counting work.
/// The memo's `RefCell` makes the oracle `Send` but **not** `Sync`:
/// each training worker owns its own oracle over the shared (`Sync`)
/// `Database`, which is exactly the sharing model the parallel trainer
/// uses.
pub struct TrueCardinality<'a> {
    db: &'a Database,
    config: ExecConfig,
    cache: RefCell<HashMap<RelSet, f64>>,
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TrueCardinality<'static>>();
};

impl<'a> TrueCardinality<'a> {
    /// Creates an oracle for queries against `db`.
    ///
    /// Uses a 1M-unit counting budget: tight enough that a catastrophic
    /// subset aborts in milliseconds (reporting the budget as a floor),
    /// generous enough that every sane sub-join at experiment scales
    /// counts exactly.
    pub fn new(db: &'a Database) -> Self {
        Self {
            db,
            config: ExecConfig::with_budget(1_000_000),
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// Overrides the counting budget.
    pub fn with_config(db: &'a Database, config: ExecConfig) -> Self {
        Self {
            db,
            config,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// Number of memoised subsets.
    pub fn cached_subsets(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Builds a counting plan for `set`: a left-deep tree joined greedily
    /// along join edges (hash joins where an equality edge exists, nested
    /// loops otherwise).
    fn counting_plan(&self, graph: &QueryGraph, set: RelSet) -> PhysicalPlan {
        let mut remaining: Vec<RelId> = set.iter().collect();
        // Start from the relation with the most selections (cheap side).
        let first = remaining[0];
        let mut covered = RelSet::single(first);
        remaining.retain(|&r| r != first);
        let mut node = PlanNode::Scan {
            rel: first,
            path: AccessPath::SeqScan,
        };
        while !remaining.is_empty() {
            // Prefer a relation connected to the covered set.
            let pos = remaining
                .iter()
                .position(|&r| graph.sets_connected(covered, RelSet::single(r)))
                .unwrap_or(0);
            let next = remaining.remove(pos);
            let conds = graph.joins_between(covered, RelSet::single(next));
            let has_eq = conds.iter().any(|&c| graph.joins()[c].op == CompareOp::Eq);
            let algo = if has_eq {
                JoinAlgo::Hash
            } else {
                JoinAlgo::NestedLoop
            };
            node = PlanNode::Join {
                algo,
                conds,
                left: Box::new(node),
                right: Box::new(PlanNode::Scan {
                    rel: next,
                    path: AccessPath::SeqScan,
                }),
            };
            covered.insert(next);
        }
        PhysicalPlan::new(node)
    }

    fn count(&self, graph: &QueryGraph, set: RelSet) -> f64 {
        if let Some(&v) = self.cache.borrow().get(&set) {
            return v;
        }
        let plan = self.counting_plan(graph, set);
        // The counting plan covers only `set`; validate against a full
        // graph would fail, so run the node directly via a sub-execution:
        // we temporarily treat the subset plan as complete by skipping
        // validation through the public API. Instead, count with the same
        // machinery `execute` uses but tolerate partial coverage.
        let rows = match self.count_unvalidated(graph, &plan) {
            Ok(n) => n,
            Err(ExecError::BudgetExceeded { budget, .. }) => budget as f64,
            Err(_) => 0.0,
        };
        self.cache.borrow_mut().insert(set, rows);
        rows
    }

    fn count_unvalidated(&self, graph: &QueryGraph, plan: &PhysicalPlan) -> Result<f64, ExecError> {
        // Subset plans are structurally valid by construction (each
        // relation scanned once, conditions span inputs), so bypass the
        // full-coverage validation `execute` performs. Counting runs
        // through the batch pipeline with an *empty* required column
        // set: only join-condition columns flow, and no output is ever
        // materialised — the oracle just sums batch row counts.
        let (rows, _work) =
            crate::executor::count_rows_unvalidated(self.db, graph, plan, self.config)?;
        Ok(rows as f64)
    }
}

impl CardinalitySource for TrueCardinality<'_> {
    fn base_rows(&self, graph: &QueryGraph, rel: RelId) -> f64 {
        self.count(graph, RelSet::single(rel)).max(0.0)
    }

    fn set_rows(&self, graph: &QueryGraph, set: RelSet) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        self.count(graph, set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, TableSchema};
    use hfqo_query::{BoundColumn, JoinEdge, Lit, Relation, Selection};
    use hfqo_storage::Value;

    /// dim: 10 rows; fact: 100 rows, fk = i % 10; selection keeps half of
    /// dim.
    fn setup() -> (Database, QueryGraph) {
        let mut cat = Catalog::new();
        let dim = cat
            .add_table(TableSchema::new(
                "dim",
                vec![Column::new("id", ColumnType::Int)],
            ))
            .unwrap();
        let fact = cat
            .add_table(TableSchema::new(
                "fact",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("dim_id", ColumnType::Int),
                ],
            ))
            .unwrap();
        let mut db = Database::new(cat);
        for i in 0..10i64 {
            db.table_mut(dim)
                .unwrap()
                .append_row(&[Value::Int(i)])
                .unwrap();
        }
        for i in 0..100i64 {
            db.table_mut(fact)
                .unwrap()
                .append_row(&[Value::Int(i), Value::Int(i % 10)])
                .unwrap();
        }
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: dim,
                    alias: "d".into(),
                },
                Relation {
                    table: fact,
                    alias: "f".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(1)),
            }],
            vec![Selection {
                column: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Lt,
                value: Lit::Int(5),
            }],
            vec![],
            vec![],
        );
        (db, graph)
    }

    #[test]
    fn base_rows_are_exact() {
        let (db, graph) = setup();
        let oracle = TrueCardinality::new(&db);
        assert_eq!(oracle.base_rows(&graph, RelId(0)), 5.0);
        assert_eq!(oracle.base_rows(&graph, RelId(1)), 100.0);
    }

    #[test]
    fn join_rows_are_exact() {
        let (db, graph) = setup();
        let oracle = TrueCardinality::new(&db);
        // 5 dims × 10 fact rows each.
        assert_eq!(oracle.set_rows(&graph, RelSet::full(2)), 50.0);
    }

    #[test]
    fn results_are_memoised() {
        let (db, graph) = setup();
        let oracle = TrueCardinality::new(&db);
        let _ = oracle.set_rows(&graph, RelSet::full(2));
        let n = oracle.cached_subsets();
        let _ = oracle.set_rows(&graph, RelSet::full(2));
        assert_eq!(oracle.cached_subsets(), n);
    }

    #[test]
    fn budget_caps_runaway_counts() {
        let (db, graph) = setup();
        let oracle = TrueCardinality::with_config(&db, ExecConfig::with_budget(20));
        let capped = oracle.set_rows(&graph, RelSet::full(2));
        assert_eq!(capped, 20.0);
    }

    #[test]
    fn empty_set_is_zero() {
        let (db, graph) = setup();
        let oracle = TrueCardinality::new(&db);
        assert_eq!(oracle.set_rows(&graph, RelSet::EMPTY), 0.0);
    }
}
