//! Aggregation operators.

use crate::error::ExecError;
use crate::ops::Budget;
use crate::row::{Layout, Row};
use hfqo_query::{AggAlgo, QueryError, QueryGraph};
use hfqo_sql::AggFunc;
use hfqo_storage::Value;
use std::collections::HashMap;

/// One aggregate accumulator.
#[derive(Debug, Clone)]
enum Acc {
    Count(u64),
    Sum(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: u64 },
}

impl Acc {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(0.0),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<(), ExecError> {
        match self {
            Acc::Count(c) => {
                // COUNT(*) (v = None) counts rows; COUNT(col) counts
                // non-null values.
                match v {
                    None => *c += 1,
                    Some(val) if !val.is_null() => *c += 1,
                    Some(_) => {}
                }
            }
            Acc::Sum(s) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *s += val.as_float().ok_or_else(|| {
                            ExecError::BadAggregate(format!("SUM over non-numeric value {val}"))
                        })?;
                    }
                }
            }
            Acc::Min(m) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && m.as_ref().is_none_or(|cur| val.total_cmp(cur).is_lt())
                    {
                        *m = Some(val.clone());
                    }
                }
            }
            Acc::Max(m) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && m.as_ref().is_none_or(|cur| val.total_cmp(cur).is_gt())
                    {
                        *m = Some(val.clone());
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *sum += val.as_float().ok_or_else(|| {
                            ExecError::BadAggregate(format!("AVG over non-numeric value {val}"))
                        })?;
                        *n += 1;
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(c) => Value::Int(c as i64),
            Acc::Sum(s) => Value::Float(s),
            Acc::Min(m) => m.unwrap_or(Value::Null),
            Acc::Max(m) => m.unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// Executes the aggregation at the plan root: output rows are the GROUP BY
/// key columns followed by one value per aggregate expression.
///
/// Hash and sort aggregation produce the same groups; sort aggregation
/// additionally emits them in key order (and charges the sort).
pub fn aggregate(
    graph: &QueryGraph,
    algo: AggAlgo,
    input: &[Row],
    layout: &Layout,
    budget: &mut Budget,
) -> Result<Vec<Row>, ExecError> {
    let key_slots: Vec<usize> = graph
        .group_by()
        .iter()
        .map(|c| {
            layout.slot(*c).ok_or_else(|| {
                QueryError::InvalidPlan(format!("group-by column {c} not in input")).into()
            })
        })
        .collect::<Result<_, ExecError>>()?;
    let agg_slots: Vec<Option<usize>> = graph
        .aggregates()
        .iter()
        .map(|a| match a.column {
            None => Ok(None),
            Some(c) => layout
                .slot(c)
                .map(Some)
                .ok_or_else(|| -> ExecError {
                    QueryError::InvalidPlan(format!("aggregate column {c} not in input")).into()
                }),
        })
        .collect::<Result<_, ExecError>>()?;

    if algo == AggAlgo::Sort {
        // Model the sort's cost; grouping itself then proceeds hash-style
        // over the sorted input (same result, ordered output).
        budget.charge(input.len() as u64)?;
    }

    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    for row in input {
        budget.charge(1)?;
        let key: Vec<Value> = key_slots.iter().map(|&s| row[s].clone()).collect();
        let accs = groups.entry(key).or_insert_with(|| {
            graph
                .aggregates()
                .iter()
                .map(|a| Acc::new(a.func))
                .collect()
        });
        for (acc, slot) in accs.iter_mut().zip(&agg_slots) {
            acc.update(slot.map(|s| &row[s]))?;
        }
    }
    // An aggregate over zero rows with no GROUP BY still yields one row
    // (SQL semantics: COUNT(*) = 0).
    if groups.is_empty() && key_slots.is_empty() {
        groups.insert(
            Vec::new(),
            graph
                .aggregates()
                .iter()
                .map(|a| Acc::new(a.func))
                .collect(),
        );
    }

    let mut out: Vec<Row> = groups
        .into_iter()
        .map(|(mut key, accs)| {
            key.extend(accs.into_iter().map(Acc::finish));
            key
        })
        .collect();
    if algo == AggAlgo::Sort {
        out.sort();
    }
    budget.charge(out.len() as u64)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, TableId, TableSchema};
    use hfqo_query::{AggExpr, BoundColumn, RelId, Relation};

    fn setup(group: bool) -> (QueryGraph, Layout) {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new(
            "t",
            vec![
                Column::new("g", ColumnType::Int),
                Column::nullable("v", ColumnType::Int),
            ],
        ))
        .unwrap();
        let graph = QueryGraph::new(
            vec![Relation {
                table: TableId(0),
                alias: "t".into(),
            }],
            vec![],
            vec![],
            vec![
                AggExpr {
                    func: AggFunc::Count,
                    column: None,
                },
                AggExpr {
                    func: AggFunc::Sum,
                    column: Some(BoundColumn::new(RelId(0), ColumnId(1))),
                },
                AggExpr {
                    func: AggFunc::Min,
                    column: Some(BoundColumn::new(RelId(0), ColumnId(1))),
                },
                AggExpr {
                    func: AggFunc::Avg,
                    column: Some(BoundColumn::new(RelId(0), ColumnId(1))),
                },
            ],
            if group {
                vec![BoundColumn::new(RelId(0), ColumnId(0))]
            } else {
                vec![]
            },
        );
        let layout = Layout::for_rel(RelId(0), &graph, &cat);
        (graph, layout)
    }

    fn input() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Int(5)],
            vec![Value::Int(2), Value::Int(7)],
        ]
    }

    #[test]
    fn global_aggregate() {
        let (graph, layout) = setup(false);
        let mut budget = Budget::new(1000);
        let out = aggregate(&graph, AggAlgo::Hash, &input(), &layout, &mut budget).unwrap();
        assert_eq!(out.len(), 1);
        // COUNT(*) = 4, SUM = 22, MIN = 5, AVG = 22/3.
        assert_eq!(out[0][0], Value::Int(4));
        assert_eq!(out[0][1], Value::Float(22.0));
        assert_eq!(out[0][2], Value::Int(5));
        assert!(matches!(out[0][3], Value::Float(f) if (f - 22.0/3.0).abs() < 1e-12));
    }

    #[test]
    fn grouped_aggregate_sorted() {
        let (graph, layout) = setup(true);
        let mut budget = Budget::new(1000);
        let out = aggregate(&graph, AggAlgo::Sort, &input(), &layout, &mut budget).unwrap();
        assert_eq!(out.len(), 2);
        // Sorted by group key.
        assert_eq!(out[0][0], Value::Int(1));
        assert_eq!(out[0][1], Value::Int(2)); // COUNT(*) includes the NULL row
        assert_eq!(out[1][0], Value::Int(2));
        assert_eq!(out[1][2], Value::Float(12.0)); // SUM for group 2
    }

    #[test]
    fn hash_and_sort_agree() {
        let (graph, layout) = setup(true);
        let mut b1 = Budget::new(1000);
        let mut h = aggregate(&graph, AggAlgo::Hash, &input(), &layout, &mut b1).unwrap();
        let mut b2 = Budget::new(1000);
        let s = aggregate(&graph, AggAlgo::Sort, &input(), &layout, &mut b2).unwrap();
        h.sort();
        assert_eq!(h, s);
    }

    #[test]
    fn empty_input_global_yields_zero_count() {
        let (graph, layout) = setup(false);
        let mut budget = Budget::new(1000);
        let out = aggregate(&graph, AggAlgo::Hash, &[], &layout, &mut budget).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::Int(0));
        assert!(out[0][2].is_null()); // MIN of nothing
        assert!(out[0][3].is_null()); // AVG of nothing
    }

    #[test]
    fn empty_input_grouped_yields_no_rows() {
        let (graph, layout) = setup(true);
        let mut budget = Budget::new(1000);
        let out = aggregate(&graph, AggAlgo::Sort, &[], &layout, &mut budget).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn sum_over_text_errors() {
        let (graph, layout) = setup(false);
        let rows = vec![vec![Value::Int(1), Value::str("oops")]];
        let mut budget = Budget::new(1000);
        // Build a layout-compatible row with a string where SUM expects a
        // number; the executor reports BadAggregate.
        let err = aggregate(&graph, AggAlgo::Hash, &rows, &layout, &mut budget).unwrap_err();
        assert!(matches!(err, ExecError::BadAggregate(_)));
    }
}
