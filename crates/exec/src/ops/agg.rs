//! Vectorized aggregation.
//!
//! [`AggOp`] drains its input pipeline batch-by-batch, folding rows into
//! per-group accumulators, then emits the result as batches of *group
//! keys followed by aggregate values*. The accumulator type `Acc` is
//! shared with the reference row engine so both engines agree on
//! aggregate semantics to the bit.

use crate::batch::{Batch, BatchBuilder, Projection};
use crate::error::ExecError;
use crate::operator::Operator;
use crate::ops::Budget;
use hfqo_catalog::{Catalog, ColumnType};
use hfqo_query::{AggAlgo, QueryError, QueryGraph};
use hfqo_sql::AggFunc;
use hfqo_storage::Value;
use std::collections::HashMap;

/// One aggregate accumulator.
#[derive(Debug, Clone)]
pub(crate) enum Acc {
    Count(u64),
    Sum(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: u64 },
}

impl Acc {
    pub(crate) fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(0.0),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
        }
    }

    pub(crate) fn update(&mut self, v: Option<&Value>) -> Result<(), ExecError> {
        match self {
            Acc::Count(c) => {
                // COUNT(*) (v = None) counts rows; COUNT(col) counts
                // non-null values.
                match v {
                    None => *c += 1,
                    Some(val) if !val.is_null() => *c += 1,
                    Some(_) => {}
                }
            }
            Acc::Sum(s) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *s += val.as_float().ok_or_else(|| {
                            ExecError::BadAggregate(format!("SUM over non-numeric value {val}"))
                        })?;
                    }
                }
            }
            Acc::Min(m) => {
                if let Some(val) = v {
                    if !val.is_null() && m.as_ref().is_none_or(|cur| val.total_cmp(cur).is_lt()) {
                        *m = Some(val.clone());
                    }
                }
            }
            Acc::Max(m) => {
                if let Some(val) = v {
                    if !val.is_null() && m.as_ref().is_none_or(|cur| val.total_cmp(cur).is_gt()) {
                        *m = Some(val.clone());
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *sum += val.as_float().ok_or_else(|| {
                            ExecError::BadAggregate(format!("AVG over non-numeric value {val}"))
                        })?;
                        *n += 1;
                    }
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            Acc::Count(c) => Value::Int(c as i64),
            Acc::Sum(s) => Value::Float(s),
            Acc::Min(m) => m.unwrap_or(Value::Null),
            Acc::Max(m) => m.unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// The column type an aggregate's output takes.
pub(crate) fn agg_output_type(func: AggFunc, input: Option<ColumnType>) -> ColumnType {
    match func {
        AggFunc::Count => ColumnType::Int,
        AggFunc::Sum | AggFunc::Avg => ColumnType::Float,
        // MIN/MAX echo a value of the input column.
        AggFunc::Min | AggFunc::Max => input.unwrap_or(ColumnType::Int),
    }
}

/// The graph's aggregation resolved against an input projection: where
/// the `GROUP BY` keys and aggregate inputs live in the input's slots,
/// and the output column types (keys first, then aggregate values).
/// Shared by [`AggOp`] and the parallel aggregation stage.
pub(crate) struct AggSpec {
    pub(crate) key_slots: Vec<usize>,
    pub(crate) agg_slots: Vec<Option<usize>>,
    pub(crate) agg_funcs: Vec<AggFunc>,
    pub(crate) out_types: Vec<ColumnType>,
}

impl AggSpec {
    /// Resolves the graph's `GROUP BY` keys and aggregate input columns
    /// against `proj`, which must carry all of them.
    pub(crate) fn resolve(
        graph: &QueryGraph,
        catalog: &Catalog,
        proj: &Projection,
    ) -> Result<Self, ExecError> {
        let key_slots: Vec<usize> = graph
            .group_by()
            .iter()
            .map(|c| {
                proj.slot(*c).ok_or_else(|| {
                    QueryError::InvalidPlan(format!("group-by column {c} not in input")).into()
                })
            })
            .collect::<Result<_, ExecError>>()?;
        let agg_slots: Vec<Option<usize>> = graph
            .aggregates()
            .iter()
            .map(|a| match a.column {
                None => Ok(None),
                Some(c) => proj.slot(c).map(Some).ok_or_else(|| -> ExecError {
                    QueryError::InvalidPlan(format!("aggregate column {c} not in input")).into()
                }),
            })
            .collect::<Result<_, ExecError>>()?;
        let agg_funcs: Vec<AggFunc> = graph.aggregates().iter().map(|a| a.func).collect();

        let input_types = proj.column_types(graph, catalog);
        let mut out_types: Vec<ColumnType> = key_slots.iter().map(|&s| input_types[s]).collect();
        out_types.extend(
            agg_funcs
                .iter()
                .zip(&agg_slots)
                .map(|(&f, &slot)| agg_output_type(f, slot.map(|s| input_types[s]))),
        );

        Ok(Self {
            key_slots,
            agg_slots,
            agg_funcs,
            out_types,
        })
    }

    /// A fresh accumulator row, one per aggregate expression.
    pub(crate) fn new_accs(&self) -> Vec<Acc> {
        self.agg_funcs.iter().map(|&f| Acc::new(f)).collect()
    }
}

/// Vectorized hash/sort aggregation at the plan root.
pub struct AggOp<'a> {
    algo: AggAlgo,
    input: Box<dyn Operator + 'a>,
    spec: AggSpec,
    builder: BatchBuilder,
    drained: bool,
}

impl<'a> AggOp<'a> {
    /// Builds the aggregation over a child pipeline whose projection must
    /// carry every `GROUP BY` key and aggregate input column.
    pub fn new(
        graph: &QueryGraph,
        catalog: &Catalog,
        algo: AggAlgo,
        input: Box<dyn Operator + 'a>,
    ) -> Result<Self, ExecError> {
        let proj = input
            .projection()
            .ok_or_else(|| QueryError::InvalidPlan("aggregate over aggregate output".into()))?;
        let spec = AggSpec::resolve(graph, catalog, proj)?;
        let builder = BatchBuilder::new(spec.out_types.clone());
        Ok(Self {
            algo,
            input,
            spec,
            builder,
            drained: false,
        })
    }

    /// Drains the input and materialises the grouped result into the
    /// output queue. Charges match the row engine: (for sort aggregation)
    /// one unit per input row for the sort, one unit per input row for
    /// grouping, one per output row.
    fn drain_and_aggregate(&mut self, budget: &mut Budget) -> Result<(), ExecError> {
        let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
        let mut input_rows = 0u64;
        while let Some(batch) = self.input.next_batch(budget)? {
            for row in 0..batch.rows() {
                budget.charge(1)?;
                input_rows += 1;
                let key: Vec<Value> = self
                    .spec
                    .key_slots
                    .iter()
                    .map(|&s| batch.value_at(s, row))
                    .collect();
                let accs = groups.entry(key).or_insert_with(|| self.spec.new_accs());
                for (acc, slot) in accs.iter_mut().zip(&self.spec.agg_slots) {
                    let v = slot.map(|s| batch.value_at(s, row));
                    acc.update(v.as_ref())?;
                }
            }
        }
        if self.algo == AggAlgo::Sort {
            // The sort's cost (the row engine charges it up front; the
            // batch engine knows the input size only after draining —
            // identical totals either way).
            budget.charge(input_rows)?;
        }
        // An aggregate over zero rows with no GROUP BY still yields one
        // row (SQL semantics: COUNT(*) = 0).
        if groups.is_empty() && self.spec.key_slots.is_empty() {
            groups.insert(Vec::new(), self.spec.new_accs());
        }
        let mut out_rows: Vec<Vec<Value>> = groups
            .into_iter()
            .map(|(mut key, accs)| {
                key.extend(accs.into_iter().map(Acc::finish));
                key
            })
            .collect();
        if self.algo == AggAlgo::Sort {
            out_rows.sort();
        }
        for row in &out_rows {
            budget.charge(1)?;
            self.builder.current_mut().push_values(row);
            self.builder.spill_if_full();
        }
        self.builder.flush();
        Ok(())
    }
}

impl Operator for AggOp<'_> {
    fn projection(&self) -> Option<&Projection> {
        // Aggregate output columns are computed, not projected.
        None
    }

    fn open(&mut self, budget: &mut Budget) -> Result<(), ExecError> {
        debug_assert!(!self.drained, "pipelines are single-use");
        self.input.open(budget)
    }

    fn next_batch(&mut self, budget: &mut Budget) -> Result<Option<Batch>, ExecError> {
        if !self.drained {
            self.drain_and_aggregate(budget)?;
            self.drained = true;
        }
        Ok(self.builder.pop())
    }

    fn close(&mut self) {
        self.input.close();
    }
}
