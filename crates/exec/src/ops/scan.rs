//! Sequential and index scans.

use crate::error::ExecError;
use crate::ops::{eval_cmp, Budget};
use crate::row::{lit_to_value, Layout, Row};
use hfqo_catalog::IndexKind;
use hfqo_query::{AccessPath, QueryError, QueryGraph, RelId, Selection};
use hfqo_sql::CompareOp;
use hfqo_storage::database::IndexStorage;
use hfqo_storage::{Database, Value};

/// Executes a scan of `rel` with the given access path, applying every
/// selection predicate on that relation.
pub fn scan(
    db: &Database,
    graph: &QueryGraph,
    rel: RelId,
    path: &AccessPath,
    budget: &mut Budget,
) -> Result<(Vec<Row>, Layout), ExecError> {
    let table_id = graph.relation(rel).table;
    let table = db.table(table_id)?;
    let layout = Layout::for_rel(rel, graph, db.catalog());
    let sel_indices: Vec<usize> = graph.selections_on(rel).collect();
    let selections: Vec<&Selection> =
        sel_indices.iter().map(|&i| &graph.selections()[i]).collect();

    let mut out = Vec::new();
    let mut row_buf: Row = Vec::with_capacity(table.schema().arity());

    match path {
        AccessPath::SeqScan => {
            for r in 0..table.row_count() {
                budget.charge(1)?;
                table.read_row_into(r, &mut row_buf);
                if passes_all(&row_buf, &selections, &layout) {
                    out.push(row_buf.clone());
                }
            }
        }
        AccessPath::IndexScan {
            index,
            driving_selection,
        } => {
            let driving = graph
                .selections()
                .get(*driving_selection)
                .ok_or_else(|| {
                    QueryError::InvalidPlan(format!(
                        "driving selection #{driving_selection} out of range"
                    ))
                })?;
            let def = db.catalog().index(*index).map_err(QueryError::from)?;
            if def.table() != table_id || def.column() != driving.column.column {
                return Err(QueryError::InvalidPlan(format!(
                    "index `{}` does not cover driving predicate {driving}",
                    def.name()
                ))
                .into());
            }
            let storage = db
                .index_storage(*index)
                .ok_or_else(|| ExecError::IndexNotBuilt(def.name().to_string()))?;
            let key = lit_to_value(&driving.value);
            let mut row_ids: Vec<u32> = Vec::new();
            match (storage, driving.op) {
                (IndexStorage::BTree(b), CompareOp::Eq) => {
                    row_ids.extend_from_slice(b.lookup_eq(&key));
                }
                (IndexStorage::BTree(b), CompareOp::Lt) => {
                    b.lookup_range(None, true, Some(&key), false, &mut row_ids)
                }
                (IndexStorage::BTree(b), CompareOp::Le) => {
                    b.lookup_range(None, true, Some(&key), true, &mut row_ids)
                }
                (IndexStorage::BTree(b), CompareOp::Gt) => {
                    b.lookup_range(Some(&key), false, None, true, &mut row_ids)
                }
                (IndexStorage::BTree(b), CompareOp::Ge) => {
                    b.lookup_range(Some(&key), true, None, true, &mut row_ids)
                }
                (IndexStorage::Hash(h), CompareOp::Eq) => {
                    row_ids.extend_from_slice(h.lookup_eq(&key));
                }
                (_, op) => {
                    return Err(QueryError::InvalidPlan(format!(
                        "index `{}` ({}) cannot serve operator {}",
                        def.name(),
                        def.kind().name(),
                        op.sql()
                    ))
                    .into());
                }
            }
            // Hash indexes never serve ranges; double-check kind semantics.
            debug_assert!(
                def.kind() != IndexKind::Hash || driving.op == CompareOp::Eq,
                "validated above"
            );
            // Residual predicates: everything except the driving one.
            let residual: Vec<&Selection> = sel_indices
                .iter()
                .filter(|&&i| i != *driving_selection)
                .map(|&i| &graph.selections()[i])
                .collect();
            for &rid in &row_ids {
                budget.charge(1)?;
                table.read_row_into(rid as usize, &mut row_buf);
                if passes_all(&row_buf, &residual, &layout) {
                    out.push(row_buf.clone());
                }
            }
        }
    }
    budget.charge(out.len() as u64)?;
    Ok((out, layout))
}

fn passes_all(row: &[Value], selections: &[&Selection], layout: &Layout) -> bool {
    selections.iter().all(|sel| {
        let Some(slot) = layout.slot(sel.column) else {
            return false;
        };
        eval_cmp(sel.op, &row[slot], &lit_to_value(&sel.value))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, TableSchema};
    use hfqo_query::{BoundColumn, Lit, Relation};

    fn db_with_index() -> (Database, QueryGraph) {
        let mut cat = Catalog::new();
        let t = cat
            .add_table(TableSchema::new(
                "t",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("v", ColumnType::Int),
                ],
            ))
            .unwrap();
        cat.add_index("t_id", t, ColumnId(0), IndexKind::BTree, true)
            .unwrap();
        let mut db = Database::new(cat);
        for i in 0..100i64 {
            db.table_mut(t)
                .unwrap()
                .append_row(&[Value::Int(i), Value::Int(i % 10)])
                .unwrap();
        }
        db.build_indexes().unwrap();
        let graph = QueryGraph::new(
            vec![Relation {
                table: t,
                alias: "t".into(),
            }],
            vec![],
            vec![
                Selection {
                    column: BoundColumn::new(RelId(0), ColumnId(0)),
                    op: CompareOp::Lt,
                    value: Lit::Int(50),
                },
                Selection {
                    column: BoundColumn::new(RelId(0), ColumnId(1)),
                    op: CompareOp::Eq,
                    value: Lit::Int(3),
                },
            ],
            vec![],
            vec![],
        );
        (db, graph)
    }

    #[test]
    fn seq_scan_applies_all_selections() {
        let (db, graph) = db_with_index();
        let mut budget = Budget::new(1_000_000);
        let (rows, layout) =
            scan(&db, &graph, RelId(0), &AccessPath::SeqScan, &mut budget).unwrap();
        // id < 50 and id % 10 == 3 → 5 rows (3, 13, 23, 33, 43).
        assert_eq!(rows.len(), 5);
        assert_eq!(layout.width(), 2);
        assert!(rows.iter().all(|r| r[0].as_int().unwrap() < 50));
    }

    #[test]
    fn index_scan_matches_seq_scan() {
        let (db, graph) = db_with_index();
        let mut b1 = Budget::new(1_000_000);
        let (seq_rows, _) = scan(&db, &graph, RelId(0), &AccessPath::SeqScan, &mut b1).unwrap();
        let mut b2 = Budget::new(1_000_000);
        let (idx_rows, _) = scan(
            &db,
            &graph,
            RelId(0),
            &AccessPath::IndexScan {
                index: hfqo_catalog::IndexId(0),
                driving_selection: 0,
            },
            &mut b2,
        )
        .unwrap();
        let mut a = seq_rows.clone();
        let mut b = idx_rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // The index scan touches fewer rows than the full scan.
        assert!(b2.work < b1.work, "idx work {} vs seq {}", b2.work, b1.work);
    }

    #[test]
    fn budget_aborts_scan() {
        let (db, graph) = db_with_index();
        let mut budget = Budget::new(10);
        let err = scan(&db, &graph, RelId(0), &AccessPath::SeqScan, &mut budget).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }));
    }

    #[test]
    fn unbuilt_index_errors() {
        let (mut db, graph) = db_with_index();
        // Recreate the database without building indexes.
        db = Database::new(db.catalog().clone());
        let mut budget = Budget::new(1000);
        let err = scan(
            &db,
            &graph,
            RelId(0),
            &AccessPath::IndexScan {
                index: hfqo_catalog::IndexId(0),
                driving_selection: 0,
            },
            &mut budget,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::IndexNotBuilt(_)));
    }

    #[test]
    fn mismatched_index_rejected() {
        let (db, graph) = db_with_index();
        // Driving selection #1 is on column v, but the index covers id.
        let mut budget = Budget::new(1000);
        let err = scan(
            &db,
            &graph,
            RelId(0),
            &AccessPath::IndexScan {
                index: hfqo_catalog::IndexId(0),
                driving_selection: 1,
            },
            &mut budget,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Plan(_)));
    }
}
