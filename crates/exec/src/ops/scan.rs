//! Vectorized sequential and index scans.
//!
//! The scan is the only operator that reads storage. It visits rows in
//! windows, evaluates the relation's selection predicates with typed
//! kernels compiled once per scan (see `crate::ops::filter`) into a
//! selection vector of passing row ids, and bulk-gathers only the
//! *projected* columns of those rows into the output batch, column by
//! column.
//!
//! The resolution work — binding selections to table columns, probing
//! indexes, mapping projection slots to storage columns — lives in
//! `ScanSpec` so the serial pull pipeline ([`ScanOp`]) and the
//! morsel-driven parallel scan ([`crate::parallel`]) share one
//! definition of what a scan *visits* and *emits*.

use crate::batch::{Batch, Projection, BATCH_CAPACITY};
use crate::error::ExecError;
use crate::operator::Operator;
use crate::ops::filter::Pred;
use crate::ops::Budget;
use crate::row::lit_to_value;
use hfqo_catalog::ColumnType;
use hfqo_query::{AccessPath, QueryGraph, RelId};
use hfqo_storage::{ColumnVector, Database, Table};

#[derive(Debug)]
enum Source {
    /// Visit every row id in `0..row_count`.
    Seq,
    /// Visit exactly these row ids (resolved from the index).
    Index(Vec<u32>),
}

/// A fully-resolved scan: the table, the projected storage columns, the
/// residual filters, and the visit order. Engine-agnostic — both the
/// serial operator and the parallel morsel workers evaluate it.
pub(crate) struct ScanSpec<'a> {
    table: &'a Table,
    /// Table column index per output slot.
    pub(crate) col_idx: Vec<usize>,
    pub(crate) out_types: Vec<ColumnType>,
    /// Predicates evaluated during the scan (for index scans: the
    /// residual predicates, the driving one being consumed by the
    /// probe), compiled once against the table's column encodings (see
    /// [`crate::ops::filter`]).
    filters: Vec<Pred>,
    source: Source,
}

impl<'a> ScanSpec<'a> {
    /// Resolves a scan of `rel` via `path` producing `projection`. Index
    /// probes run here (plan-shape errors surface at build time; the
    /// probe itself is charge-free in the row engine too — only row
    /// visits cost work).
    pub(crate) fn new(
        db: &'a Database,
        graph: &QueryGraph,
        rel: RelId,
        path: &AccessPath,
        projection: &Projection,
    ) -> Result<Self, ExecError> {
        let table_id = graph.relation(rel).table;
        let table = db.table(table_id)?;
        let out_types = projection.column_types(graph, db.catalog());
        let col_idx = projection
            .columns()
            .iter()
            .map(|c| c.column.index())
            .collect();

        let sel_indices: Vec<usize> = graph.selections_on(rel).collect();
        let cols = table.columns();
        let resolve = |i: usize| {
            let sel = &graph.selections()[i];
            let col = sel.column.column.index();
            Pred::compile(col, sel.op, lit_to_value(&sel.value), &cols[col])
        };

        let (filters, source) = match path {
            AccessPath::SeqScan => (
                sel_indices.iter().map(|&i| resolve(i)).collect(),
                Source::Seq,
            ),
            AccessPath::IndexScan {
                index,
                driving_selection,
            } => {
                let row_ids = super::index_row_ids(db, graph, rel, *index, *driving_selection)?;
                let residual = sel_indices
                    .iter()
                    .filter(|&&i| i != *driving_selection)
                    .map(|&i| resolve(i))
                    .collect();
                (residual, Source::Index(row_ids))
            }
        };

        Ok(Self {
            table,
            col_idx,
            out_types,
            filters,
            source,
        })
    }

    /// Number of rows the scan visits (each one costs a unit of work).
    #[inline]
    pub(crate) fn visit_count(&self) -> usize {
        match &self.source {
            Source::Seq => self.table.row_count(),
            Source::Index(ids) => ids.len(),
        }
    }

    /// An unfiltered sequential scan emits every visited row in storage
    /// order — contiguous ranges copy column-wise without a gather.
    #[inline]
    pub(crate) fn is_plain_seq(&self) -> bool {
        matches!(self.source, Source::Seq) && self.filters.is_empty()
    }

    /// Appends to `sel` the table row ids of visits `from .. from + n`
    /// that pass every filter, in visit order: the first predicate's
    /// kernel fills the selection vector over the whole window, the
    /// rest intersect it ([`Pred::refine`]). Both engines call this —
    /// it is the single definition of which rows a scan emits.
    pub(crate) fn filter_visits(&self, from: usize, n: usize, sel: &mut Vec<u32>) {
        let cols = self.table.columns();
        match &self.source {
            Source::Seq => {
                let Some((first, rest)) = self.filters.split_first() else {
                    sel.extend(from as u32..(from + n) as u32);
                    return;
                };
                first.filter_range(cols, from, from + n, sel);
                for f in rest {
                    if sel.is_empty() {
                        return;
                    }
                    f.refine(cols, sel);
                }
            }
            Source::Index(ids) => {
                sel.extend_from_slice(&ids[from..from + n]);
                for f in &self.filters {
                    if sel.is_empty() {
                        return;
                    }
                    f.refine(cols, sel);
                }
            }
        }
    }

    /// The projected storage columns, one per output slot.
    #[inline]
    pub(crate) fn projected_columns(&self) -> impl Iterator<Item = &ColumnVector> {
        let cols = self.table.columns();
        self.col_idx.iter().map(move |&c| &cols[c])
    }

    fn release(&mut self) {
        if let Source::Index(rids) = &mut self.source {
            rids.clear();
        }
    }
}

/// Vectorized scan of one relation.
pub struct ScanOp<'a> {
    spec: ScanSpec<'a>,
    projection: Projection,
    cursor: usize,
    row_buf: Vec<u32>,
}

impl<'a> ScanOp<'a> {
    /// Builds a scan of `rel` via `path`, producing `projection`.
    pub fn new(
        db: &'a Database,
        graph: &QueryGraph,
        rel: RelId,
        path: &AccessPath,
        projection: Projection,
    ) -> Result<Self, ExecError> {
        let spec = ScanSpec::new(db, graph, rel, path, &projection)?;
        Ok(Self {
            spec,
            projection,
            cursor: 0,
            row_buf: Vec::with_capacity(BATCH_CAPACITY),
        })
    }
}

impl Operator for ScanOp<'_> {
    fn projection(&self) -> Option<&Projection> {
        Some(&self.projection)
    }

    fn open(&mut self, _budget: &mut Budget) -> Result<(), ExecError> {
        debug_assert_eq!(self.cursor, 0, "pipelines are single-use");
        Ok(())
    }

    fn next_batch(&mut self, budget: &mut Budget) -> Result<Option<Batch>, ExecError> {
        let total = self.spec.visit_count();
        // Unfiltered sequential scans emit exactly the rows they visit:
        // skip the row-id gather and copy each column's contiguous range
        // (a memcpy for fixed-width data) — the hot path of full-table
        // scans.
        if self.spec.is_plain_seq() {
            let n = (total - self.cursor).min(BATCH_CAPACITY);
            if n == 0 {
                return Ok(None);
            }
            budget.charge(n as u64)?; // visited
            budget.charge(n as u64)?; // emitted
            let mut batch = Batch::new(&self.spec.out_types);
            if self.spec.col_idx.is_empty() {
                batch.push_empty_rows(n);
            } else {
                batch.append_range_from(self.spec.projected_columns(), self.cursor, n);
            }
            self.cursor += n;
            return Ok(Some(batch));
        }

        // Filtered scans visit whole windows at a time: the predicate
        // kernels fill the selection vector per window, and the loop
        // keeps visiting until a batch worth of survivors (or the end).
        // Every visited row is charged, pass or fail, exactly as in the
        // row engine.
        self.row_buf.clear();
        while self.cursor < total && self.row_buf.len() < BATCH_CAPACITY {
            let n = (total - self.cursor).min(BATCH_CAPACITY);
            budget.charge_rows(n as u64)?;
            self.spec.filter_visits(self.cursor, n, &mut self.row_buf);
            self.cursor += n;
        }
        if self.row_buf.is_empty() {
            return Ok(None);
        }
        // Emitted rows are work, exactly as in the row engine.
        budget.charge(self.row_buf.len() as u64)?;
        let mut batch = Batch::new(&self.spec.out_types);
        if self.spec.col_idx.is_empty() {
            batch.push_empty_rows(self.row_buf.len());
        } else {
            batch.append_selected_from(self.spec.projected_columns(), &self.row_buf);
        }
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.row_buf = Vec::new();
        self.spec.release();
    }
}
