//! Vectorized sequential and index scans.
//!
//! The scan is the only operator that reads storage. It visits rows in
//! windows, evaluates the relation's selection predicates directly
//! against the table's column vectors (no row materialisation), and
//! gathers only the *projected* columns of the passing rows into the
//! output batch, column by column.

use crate::batch::{Batch, Projection, BATCH_CAPACITY};
use crate::error::ExecError;
use crate::operator::Operator;
use crate::ops::{eval_cmp, Budget};
use crate::row::lit_to_value;
use hfqo_catalog::ColumnType;
use hfqo_query::{AccessPath, QueryGraph, RelId};
use hfqo_sql::CompareOp;
use hfqo_storage::{Database, Table, Value};

/// A selection resolved to a table column index.
#[derive(Debug, Clone)]
struct ResolvedSel {
    col: usize,
    op: CompareOp,
    value: Value,
}

#[derive(Debug)]
enum Source {
    /// Visit every row id in `0..row_count`.
    Seq,
    /// Visit exactly these row ids (resolved from the index).
    Index(Vec<u32>),
}

/// Vectorized scan of one relation.
pub struct ScanOp<'a> {
    table: &'a Table,
    projection: Projection,
    /// Table column index per output slot.
    col_idx: Vec<usize>,
    out_types: Vec<ColumnType>,
    /// Predicates evaluated during the scan (for index scans: the
    /// residual predicates, the driving one being consumed by the probe).
    filters: Vec<ResolvedSel>,
    source: Source,
    cursor: usize,
    row_buf: Vec<u32>,
}

impl<'a> ScanOp<'a> {
    /// Builds a scan of `rel` via `path`, producing `projection`. Index
    /// probes run here (plan-shape errors surface at build time; the
    /// probe itself is charge-free in the row engine too — only row
    /// visits cost work).
    pub fn new(
        db: &'a Database,
        graph: &QueryGraph,
        rel: RelId,
        path: &AccessPath,
        projection: Projection,
    ) -> Result<Self, ExecError> {
        let table_id = graph.relation(rel).table;
        let table = db.table(table_id)?;
        let out_types = projection.column_types(graph, db.catalog());
        let col_idx = projection
            .columns()
            .iter()
            .map(|c| c.column.index())
            .collect();

        let sel_indices: Vec<usize> = graph.selections_on(rel).collect();
        let resolve = |i: usize| {
            let sel = &graph.selections()[i];
            ResolvedSel {
                col: sel.column.column.index(),
                op: sel.op,
                value: lit_to_value(&sel.value),
            }
        };

        let (filters, source) = match path {
            AccessPath::SeqScan => (
                sel_indices.iter().map(|&i| resolve(i)).collect(),
                Source::Seq,
            ),
            AccessPath::IndexScan {
                index,
                driving_selection,
            } => {
                let row_ids = super::index_row_ids(db, graph, rel, *index, *driving_selection)?;
                let residual = sel_indices
                    .iter()
                    .filter(|&&i| i != *driving_selection)
                    .map(|&i| resolve(i))
                    .collect();
                (residual, Source::Index(row_ids))
            }
        };

        Ok(Self {
            table,
            projection,
            col_idx,
            out_types,
            filters,
            source,
            cursor: 0,
            row_buf: Vec::with_capacity(BATCH_CAPACITY),
        })
    }

    #[inline]
    fn passes(&self, row: usize) -> bool {
        let cols = self.table.columns();
        self.filters
            .iter()
            .all(|f| eval_cmp(f.op, &cols[f.col].get(row), &f.value))
    }
}

impl Operator for ScanOp<'_> {
    fn projection(&self) -> Option<&Projection> {
        Some(&self.projection)
    }

    fn open(&mut self, _budget: &mut Budget) -> Result<(), ExecError> {
        debug_assert_eq!(self.cursor, 0, "pipelines are single-use");
        Ok(())
    }

    fn next_batch(&mut self, budget: &mut Budget) -> Result<Option<Batch>, ExecError> {
        self.row_buf.clear();
        match &self.source {
            Source::Seq => {
                let total = self.table.row_count();
                while self.cursor < total && self.row_buf.len() < BATCH_CAPACITY {
                    budget.charge(1)?;
                    if self.passes(self.cursor) {
                        self.row_buf.push(self.cursor as u32);
                    }
                    self.cursor += 1;
                }
            }
            Source::Index(row_ids) => {
                while self.cursor < row_ids.len() && self.row_buf.len() < BATCH_CAPACITY {
                    budget.charge(1)?;
                    let rid = row_ids[self.cursor];
                    if self.passes(rid as usize) {
                        self.row_buf.push(rid);
                    }
                    self.cursor += 1;
                }
            }
        }
        if self.row_buf.is_empty() {
            return Ok(None);
        }
        // Emitted rows are work, exactly as in the row engine.
        budget.charge(self.row_buf.len() as u64)?;
        let mut batch = Batch::new(&self.out_types);
        if self.col_idx.is_empty() {
            batch.push_empty_rows(self.row_buf.len());
        } else {
            let cols = self.table.columns();
            batch.gather_rows_from(self.col_idx.iter().map(|&c| &cols[c]), &self.row_buf);
        }
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.row_buf = Vec::new();
        if let Source::Index(rids) = &mut self.source {
            rids.clear();
        }
    }
}
