//! Vectorized join operators: nested loops, hash, and sort-merge.
//!
//! All three share one [`JoinOp`] shell that owns the two child
//! pipelines, the resolved join conditions (slots into the children's
//! projections), and the output gather map. The build side (always the
//! *right* child, matching the row engine) is drained into unbounded
//! [`Materialized`] columns; the probe side streams batch-by-batch, so a
//! hash join's peak footprint is the build side plus one probe batch plus
//! pending output — not the full cross product of inputs.

use crate::batch::{Batch, BatchBuilder, Projection};
use crate::error::ExecError;
use crate::operator::{ColSet, Materialized, Operator};
use crate::ops::{eval_cmp_cols, first_eq, resolve_conds, Budget, SlotCond};
use hfqo_catalog::Catalog;
use hfqo_query::{JoinAlgo, QueryError, QueryGraph};
use hfqo_storage::Value;
use std::collections::HashMap;

/// Where a join output column is gathered from: a slot of the left
/// (probe) input or a slot of the right (build) input.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Side {
    Left(usize),
    Right(usize),
}

/// A join's output projection: the children's projected columns
/// restricted to `required`, left columns first — identical slot order
/// to the row engine's concatenated layout when everything is required.
/// Returns the output columns and, per slot, which input it gathers
/// from. Shared by [`JoinOp`] and the parallel join stages so the two
/// evaluators cannot disagree on output shape.
pub(crate) fn join_output(
    l_proj: &Projection,
    r_proj: &Projection,
    required: &ColSet,
) -> (Projection, Vec<Side>) {
    let mut out_cols = Vec::new();
    let mut out_map = Vec::new();
    for (slot, &col) in l_proj.columns().iter().enumerate() {
        if required.contains(col) {
            out_cols.push(col);
            out_map.push(Side::Left(slot));
        }
    }
    for (slot, &col) in r_proj.columns().iter().enumerate() {
        if required.contains(col) {
            out_cols.push(col);
            out_map.push(Side::Right(slot));
        }
    }
    (Projection::new(out_cols), out_map)
}

/// The hash table keyed either on raw `i64`s (the fast path when both
/// key columns are integer-typed — no `Value` materialisation per probe)
/// or on [`Value`]s (everything else). Cross-type numeric keys never
/// match in either representation, exactly like the row engine's
/// `HashMap<&Value>` (`Int` and `Float` hash differently by design; the
/// binder type-checks join keys).
enum KeyTable {
    Int(HashMap<i64, Vec<u32>>),
    Any(HashMap<Value, Vec<u32>>),
}

enum State {
    /// Before `open`.
    Unopened,
    /// Hash join: right side materialised and hashed, probing left.
    Hash {
        build: Materialized,
        table: KeyTable,
        key: SlotCond,
    },
    /// Nested loops: right side materialised, streaming left.
    Nested {
        inner: Materialized,
    },
    /// Sort-merge: both sides materialised, sorted cursors advancing.
    Merge {
        left: Materialized,
        right: Materialized,
        li: Vec<u32>,
        ri: Vec<u32>,
        i: usize,
        j: usize,
        key: SlotCond,
    },
    Closed,
}

/// Vectorized join of two child pipelines.
pub struct JoinOp<'a> {
    algo: JoinAlgo,
    projection: Projection,
    out_map: Vec<Side>,
    conds: Vec<SlotCond>,
    left: Box<dyn Operator + 'a>,
    right: Box<dyn Operator + 'a>,
    builder: BatchBuilder,
    state: State,
    input_done: bool,
}

impl<'a> JoinOp<'a> {
    /// Assembles a join over two built child pipelines. The output
    /// projection is the children's projected columns restricted to
    /// `required`, left columns first — identical slot order to the row
    /// engine's concatenated layout when everything is required.
    pub fn new(
        graph: &QueryGraph,
        catalog: &Catalog,
        algo: JoinAlgo,
        conds: &[usize],
        left: Box<dyn Operator + 'a>,
        right: Box<dyn Operator + 'a>,
        required: &ColSet,
    ) -> Result<Self, ExecError> {
        let l_proj = left
            .projection()
            .ok_or_else(|| QueryError::InvalidPlan("join over aggregate output".into()))?;
        let r_proj = right
            .projection()
            .ok_or_else(|| QueryError::InvalidPlan("join over aggregate output".into()))?;

        let slot_conds = resolve_conds(graph, conds, |c| l_proj.slot(c), |c| r_proj.slot(c))?;
        let (projection, out_map) = join_output(l_proj, r_proj, required);
        let out_types = projection.column_types(graph, catalog);

        Ok(Self {
            algo,
            projection,
            out_map,
            conds: slot_conds,
            left,
            right,
            builder: BatchBuilder::new(out_types),
            state: State::Unopened,
            input_done: false,
        })
    }

    /// Emits the joined row `(probe batch row, build row)` into the
    /// builder and charges the emitted row.
    #[inline]
    fn emit(
        builder: &mut BatchBuilder,
        out_map: &[Side],
        probe: &Batch,
        p_row: usize,
        build: &Materialized,
        b_row: usize,
        budget: &mut Budget,
    ) -> Result<(), ExecError> {
        builder
            .current_mut()
            .push_gathered(out_map.iter().map(|side| match side {
                Side::Left(s) => (probe.column(*s), p_row),
                Side::Right(s) => (&build.cols[*s], b_row),
            }));
        budget.charge(1)?;
        builder.spill_if_full();
        Ok(())
    }

    /// Joins one probe batch against the hash table.
    fn probe_hash(&mut self, batch: &Batch, budget: &mut Budget) -> Result<(), ExecError> {
        let State::Hash { build, table, key } = &self.state else {
            unreachable!("probe_hash outside hash state");
        };
        for row in 0..batch.rows() {
            budget.charge(1)?;
            let matches = match table {
                KeyTable::Int(t) => batch.column(key.l_slot).int_at(row).and_then(|k| t.get(&k)),
                KeyTable::Any(t) => {
                    let k = batch.value_at(key.l_slot, row);
                    if k.is_null() {
                        None
                    } else {
                        t.get(&k)
                    }
                }
            };
            if let Some(matches) = matches {
                for &b_row in matches {
                    budget.charge(1)?;
                    let passes = self.conds.iter().all(|c| {
                        eval_cmp_cols(
                            c.op,
                            batch.column(c.l_slot),
                            row,
                            &build.cols[c.r_slot],
                            b_row as usize,
                        )
                    });
                    if passes {
                        Self::emit(
                            &mut self.builder,
                            &self.out_map,
                            batch,
                            row,
                            build,
                            b_row as usize,
                            budget,
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Joins one probe batch against the materialised inner side with
    /// nested loops.
    fn probe_nested(&mut self, batch: &Batch, budget: &mut Budget) -> Result<(), ExecError> {
        let State::Nested { inner } = &self.state else {
            unreachable!("probe_nested outside nested state");
        };
        for row in 0..batch.rows() {
            for b_row in 0..inner.rows {
                budget.charge(1)?;
                let passes = self.conds.iter().all(|c| {
                    eval_cmp_cols(
                        c.op,
                        batch.column(c.l_slot),
                        row,
                        &inner.cols[c.r_slot],
                        b_row,
                    )
                });
                if passes {
                    Self::emit(
                        &mut self.builder,
                        &self.out_map,
                        batch,
                        row,
                        inner,
                        b_row,
                        budget,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Advances the merge until at least one output batch is ready or the
    /// cursors are exhausted. Charge pattern matches the row engine: one
    /// unit per cursor comparison, one per pair in each equal block.
    fn advance_merge(&mut self, budget: &mut Budget) -> Result<(), ExecError> {
        loop {
            if self.builder.has_ready() {
                return Ok(());
            }
            let State::Merge {
                left,
                right,
                li,
                ri,
                i,
                j,
                key,
            } = &mut self.state
            else {
                unreachable!("advance_merge outside merge state");
            };
            if *i >= li.len() || *j >= ri.len() {
                self.input_done = true;
                self.builder.flush();
                return Ok(());
            }
            budget.charge(1)?;
            let (l_row0, r_row0) = (li[*i] as usize, ri[*j] as usize);
            let lcol = &left.cols[key.l_slot];
            let rcol = &right.cols[key.r_slot];
            match lcol.total_cmp_at(l_row0, rcol, r_row0) {
                std::cmp::Ordering::Less => *i += 1,
                std::cmp::Ordering::Greater => *j += 1,
                std::cmp::Ordering::Equal => {
                    let i_end = (*i..li.len())
                        .take_while(|&x| lcol.total_cmp_at(li[x] as usize, lcol, l_row0).is_eq())
                        .last()
                        .unwrap_or(*i)
                        + 1;
                    let j_end = (*j..ri.len())
                        .take_while(|&x| rcol.total_cmp_at(ri[x] as usize, rcol, r_row0).is_eq())
                        .last()
                        .unwrap_or(*j)
                        + 1;
                    let (block_i, block_j) = (*i..i_end, *j..j_end);
                    *i = i_end;
                    *j = j_end;
                    // Reborrow immutably for emission.
                    let State::Merge {
                        left,
                        right,
                        li,
                        ri,
                        ..
                    } = &self.state
                    else {
                        unreachable!();
                    };
                    for lx in block_i.clone() {
                        for rx in block_j.clone() {
                            budget.charge(1)?;
                            let l_row = li[lx] as usize;
                            let r_row = ri[rx] as usize;
                            let passes = self.conds.iter().all(|c| {
                                eval_cmp_cols(
                                    c.op,
                                    &left.cols[c.l_slot],
                                    l_row,
                                    &right.cols[c.r_slot],
                                    r_row,
                                )
                            });
                            if passes {
                                self.builder
                                    .current_mut()
                                    .push_gathered(self.out_map.iter().map(|side| match side {
                                        Side::Left(s) => (&left.cols[*s], l_row),
                                        Side::Right(s) => (&right.cols[*s], r_row),
                                    }));
                                budget.charge(1)?;
                                self.builder.spill_if_full();
                            }
                        }
                    }
                }
            }
        }
    }
}

impl JoinOp<'_> {
    /// Builds blocking state for the configured algorithm. Split out of
    /// `open` so the borrow of `graph`/`catalog` is not needed there.
    fn build_state(&mut self, budget: &mut Budget) -> Result<(), ExecError> {
        match self.algo {
            JoinAlgo::Hash => {
                let key = first_eq(&self.conds).ok_or_else(|| {
                    QueryError::InvalidPlan("hash join requires an equality condition".into())
                })?;
                let r_width = self
                    .right
                    .projection()
                    .expect("checked at construction")
                    .width();
                let build = Materialized::drain(self.right.as_mut(), r_width, budget)?;
                let int_keyed = build
                    .cols
                    .get(key.r_slot)
                    .is_some_and(|c| c.ty() == hfqo_catalog::ColumnType::Int);
                let table = if int_keyed {
                    let mut t: HashMap<i64, Vec<u32>> = HashMap::new();
                    for row in 0..build.rows {
                        budget.charge(1)?;
                        if let Some(k) = build.cols[key.r_slot].int_at(row) {
                            t.entry(k).or_default().push(row as u32);
                        }
                    }
                    KeyTable::Int(t)
                } else {
                    let mut t: HashMap<Value, Vec<u32>> = HashMap::new();
                    for row in 0..build.rows {
                        budget.charge(1)?;
                        let k = build.value_at(key.r_slot, row);
                        if !k.is_null() {
                            t.entry(k).or_default().push(row as u32);
                        }
                    }
                    KeyTable::Any(t)
                };
                self.state = State::Hash { build, table, key };
            }
            JoinAlgo::NestedLoop => {
                let r_width = self
                    .right
                    .projection()
                    .expect("checked at construction")
                    .width();
                let inner = Materialized::drain(self.right.as_mut(), r_width, budget)?;
                self.state = State::Nested { inner };
            }
            JoinAlgo::Merge => {
                let key = first_eq(&self.conds).ok_or_else(|| {
                    QueryError::InvalidPlan("merge join requires an equality condition".into())
                })?;
                let l_width = self
                    .left
                    .projection()
                    .expect("checked at construction")
                    .width();
                let r_width = self
                    .right
                    .projection()
                    .expect("checked at construction")
                    .width();
                let left = Materialized::drain(self.left.as_mut(), l_width, budget)?;
                let right = Materialized::drain(self.right.as_mut(), r_width, budget)?;
                let mut li: Vec<u32> = (0..left.rows as u32)
                    .filter(|&r| !left.cols[key.l_slot].is_null(r as usize))
                    .collect();
                let mut ri: Vec<u32> = (0..right.rows as u32)
                    .filter(|&r| !right.cols[key.r_slot].is_null(r as usize))
                    .collect();
                let sort_work = (li.len() + ri.len()) as u64;
                budget.charge(sort_work.max(1))?;
                // An input that produced no batches has no columns at
                // all (`Materialized::drain` infers types from the
                // first batch), so only touch the key columns on the
                // sides that actually have rows to sort.
                if !li.is_empty() {
                    let lcol = &left.cols[key.l_slot];
                    li.sort_by(|&a, &b| lcol.total_cmp_at(a as usize, lcol, b as usize));
                }
                if !ri.is_empty() {
                    let rcol = &right.cols[key.r_slot];
                    ri.sort_by(|&a, &b| rcol.total_cmp_at(a as usize, rcol, b as usize));
                }
                self.state = State::Merge {
                    left,
                    right,
                    li,
                    ri,
                    i: 0,
                    j: 0,
                    key,
                };
            }
        }
        Ok(())
    }
}

impl Operator for JoinOp<'_> {
    fn projection(&self) -> Option<&Projection> {
        Some(&self.projection)
    }

    fn open(&mut self, budget: &mut Budget) -> Result<(), ExecError> {
        self.left.open(budget)?;
        self.right.open(budget)?;
        self.input_done = false;
        self.build_state(budget)
    }

    fn next_batch(&mut self, budget: &mut Budget) -> Result<Option<Batch>, ExecError> {
        loop {
            if let Some(ready) = self.builder.pop() {
                return Ok(Some(ready));
            }
            if self.input_done {
                return Ok(None);
            }
            match self.algo {
                JoinAlgo::Merge => self.advance_merge(budget)?,
                JoinAlgo::Hash | JoinAlgo::NestedLoop => match self.left.next_batch(budget)? {
                    None => {
                        self.input_done = true;
                        self.builder.flush();
                    }
                    Some(batch) => {
                        if matches!(self.algo, JoinAlgo::Hash) {
                            self.probe_hash(&batch, budget)?;
                        } else {
                            self.probe_nested(&batch, budget)?;
                        }
                    }
                },
            }
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.state = State::Closed;
    }
}
