//! Join operators: nested loops, hash, and sort-merge.

use crate::error::ExecError;
use crate::ops::{eval_cmp, Budget};
use crate::row::{Layout, Row};
use hfqo_query::{JoinAlgo, QueryError, QueryGraph};
use hfqo_sql::CompareOp;
use hfqo_storage::Value;
use std::collections::HashMap;

/// A join condition resolved to row slots: `left_rows[l_slot] <op>
/// right_rows[r_slot]`.
#[derive(Debug, Clone, Copy)]
struct SlotCond {
    l_slot: usize,
    r_slot: usize,
    op: CompareOp,
}

fn resolve_conds(
    graph: &QueryGraph,
    conds: &[usize],
    left: &Layout,
    right: &Layout,
) -> Result<Vec<SlotCond>, ExecError> {
    conds
        .iter()
        .map(|&c| {
            let edge = graph
                .joins()
                .get(c)
                .ok_or_else(|| QueryError::InvalidPlan(format!("join cond #{c} out of range")))?;
            if let (Some(l), Some(r)) = (left.slot(edge.left), right.slot(edge.right)) {
                Ok(SlotCond {
                    l_slot: l,
                    r_slot: r,
                    op: edge.op,
                })
            } else if let (Some(l), Some(r)) = (left.slot(edge.right), right.slot(edge.left)) {
                Ok(SlotCond {
                    l_slot: l,
                    r_slot: r,
                    op: edge.op.flipped(),
                })
            } else {
                Err(QueryError::InvalidPlan(format!(
                    "join cond #{c} does not span the two inputs"
                ))
                .into())
            }
        })
        .collect()
}

/// Executes a join of two materialised inputs.
#[allow(clippy::too_many_arguments)]
pub fn join(
    graph: &QueryGraph,
    algo: JoinAlgo,
    conds: &[usize],
    left_rows: &[Row],
    left_layout: &Layout,
    right_rows: &[Row],
    right_layout: &Layout,
    budget: &mut Budget,
) -> Result<(Vec<Row>, Layout), ExecError> {
    let out_layout = left_layout.concat(right_layout);
    let slot_conds = resolve_conds(graph, conds, left_layout, right_layout)?;
    let mut out: Vec<Row> = Vec::new();

    let emit = |l: &Row, r: &Row, out: &mut Vec<Row>| {
        let mut row = Vec::with_capacity(l.len() + r.len());
        row.extend_from_slice(l);
        row.extend_from_slice(r);
        out.push(row);
    };

    match algo {
        JoinAlgo::NestedLoop => {
            for l in left_rows {
                for r in right_rows {
                    budget.charge(1)?;
                    if slot_conds
                        .iter()
                        .all(|c| eval_cmp(c.op, &l[c.l_slot], &r[c.r_slot]))
                    {
                        emit(l, r, &mut out);
                    }
                }
            }
        }
        JoinAlgo::Hash => {
            let key = first_eq(&slot_conds).ok_or_else(|| {
                QueryError::InvalidPlan("hash join requires an equality condition".into())
            })?;
            // Build on the right input.
            let mut table: HashMap<&Value, Vec<usize>> = HashMap::new();
            for (i, r) in right_rows.iter().enumerate() {
                budget.charge(1)?;
                let k = &r[key.r_slot];
                if !k.is_null() {
                    table.entry(k).or_default().push(i);
                }
            }
            // Probe with the left input.
            for l in left_rows {
                budget.charge(1)?;
                let k = &l[key.l_slot];
                if k.is_null() {
                    continue;
                }
                if let Some(matches) = table.get(k) {
                    for &i in matches {
                        budget.charge(1)?;
                        let r = &right_rows[i];
                        if slot_conds
                            .iter()
                            .all(|c| eval_cmp(c.op, &l[c.l_slot], &r[c.r_slot]))
                        {
                            emit(l, r, &mut out);
                        }
                    }
                }
            }
        }
        JoinAlgo::Merge => {
            let key = first_eq(&slot_conds).ok_or_else(|| {
                QueryError::InvalidPlan("merge join requires an equality condition".into())
            })?;
            // Sort index vectors by key (non-null keys only; NULL never
            // matches an equality).
            let mut li: Vec<usize> = (0..left_rows.len())
                .filter(|&i| !left_rows[i][key.l_slot].is_null())
                .collect();
            let mut ri: Vec<usize> = (0..right_rows.len())
                .filter(|&i| !right_rows[i][key.r_slot].is_null())
                .collect();
            let sort_work = (li.len() + ri.len()) as u64;
            budget.charge(sort_work.max(1))?;
            li.sort_by(|&a, &b| left_rows[a][key.l_slot].total_cmp(&left_rows[b][key.l_slot]));
            ri.sort_by(|&a, &b| right_rows[a][key.r_slot].total_cmp(&right_rows[b][key.r_slot]));
            let (mut i, mut j) = (0usize, 0usize);
            while i < li.len() && j < ri.len() {
                budget.charge(1)?;
                let lv = &left_rows[li[i]][key.l_slot];
                let rv = &right_rows[ri[j]][key.r_slot];
                match lv.total_cmp(rv) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        // Find the equal blocks on both sides.
                        let i_end = (i..li.len())
                            .take_while(|&x| left_rows[li[x]][key.l_slot] == *lv)
                            .last()
                            .unwrap_or(i)
                            + 1;
                        let j_end = (j..ri.len())
                            .take_while(|&x| right_rows[ri[x]][key.r_slot] == *rv)
                            .last()
                            .unwrap_or(j)
                            + 1;
                        for &lx in &li[i..i_end] {
                            for &rx in &ri[j..j_end] {
                                budget.charge(1)?;
                                let l = &left_rows[lx];
                                let r = &right_rows[rx];
                                if slot_conds
                                    .iter()
                                    .all(|c| eval_cmp(c.op, &l[c.l_slot], &r[c.r_slot]))
                                {
                                    emit(l, r, &mut out);
                                }
                            }
                        }
                        i = i_end;
                        j = j_end;
                    }
                }
            }
        }
    }
    budget.charge(out.len() as u64)?;
    Ok((out, out_layout))
}

fn first_eq(conds: &[SlotCond]) -> Option<SlotCond> {
    conds.iter().copied().find(|c| c.op == CompareOp::Eq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, TableId, TableSchema};
    use hfqo_query::{BoundColumn, JoinEdge, RelId, Relation};

    fn setup() -> (QueryGraph, Layout, Layout) {
        let mut cat = Catalog::new();
        for n in ["a", "b"] {
            cat.add_table(TableSchema::new(
                n,
                vec![
                    Column::new("k", ColumnType::Int),
                    Column::new("v", ColumnType::Int),
                ],
            ))
            .unwrap();
        }
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: TableId(0),
                    alias: "a".into(),
                },
                Relation {
                    table: TableId(1),
                    alias: "b".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(0)),
            }],
            vec![],
            vec![],
            vec![],
        );
        let la = Layout::for_rel(RelId(0), &graph, &cat);
        let lb = Layout::for_rel(RelId(1), &graph, &cat);
        (graph, la, lb)
    }

    fn rows(pairs: &[(i64, i64)]) -> Vec<Row> {
        pairs
            .iter()
            .map(|&(k, v)| vec![Value::Int(k), Value::Int(v)])
            .collect()
    }

    fn run(algo: JoinAlgo, conds: Vec<usize>) -> Vec<Row> {
        let (graph, la, lb) = setup();
        let left = rows(&[(1, 10), (2, 20), (2, 21), (3, 30)]);
        let right = rows(&[(2, 200), (3, 300), (3, 301), (4, 400)]);
        let mut budget = Budget::new(1_000_000);
        let (mut out, layout) =
            join(&graph, algo, &conds, &left, &la, &right, &lb, &mut budget).unwrap();
        assert_eq!(layout.width(), 4);
        out.sort();
        out
    }

    #[test]
    fn all_algorithms_agree() {
        let nl = run(JoinAlgo::NestedLoop, vec![0]);
        let hash = run(JoinAlgo::Hash, vec![0]);
        let merge = run(JoinAlgo::Merge, vec![0]);
        // k=2 matches 2 left × 1 right, k=3 matches 1 × 2 → 4 rows.
        assert_eq!(nl.len(), 4);
        assert_eq!(nl, hash);
        assert_eq!(nl, merge);
    }

    #[test]
    fn cross_join_via_nested_loop() {
        let out = run(JoinAlgo::NestedLoop, vec![]);
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn hash_without_equality_errors() {
        let (graph, la, lb) = setup();
        let mut budget = Budget::new(1000);
        let err = join(
            &graph,
            JoinAlgo::Hash,
            &[],
            &rows(&[(1, 1)]),
            &la,
            &rows(&[(1, 1)]),
            &lb,
            &mut budget,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Plan(_)));
    }

    #[test]
    fn nulls_never_match() {
        let (graph, la, lb) = setup();
        let left = vec![vec![Value::Null, Value::Int(1)], vec![Value::Int(2), Value::Int(2)]];
        let right = vec![vec![Value::Null, Value::Int(9)], vec![Value::Int(2), Value::Int(8)]];
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::Merge] {
            let mut budget = Budget::new(100_000);
            let (out, _) =
                join(&graph, algo, &[0], &left, &la, &right, &lb, &mut budget).unwrap();
            assert_eq!(out.len(), 1, "{algo:?}");
            assert_eq!(out[0][0], Value::Int(2));
        }
    }

    #[test]
    fn budget_aborts_cross_join() {
        let (graph, la, lb) = setup();
        let left = rows(&(0..100).map(|i| (i, i)).collect::<Vec<_>>());
        let right = rows(&(0..100).map(|i| (i, i)).collect::<Vec<_>>());
        let mut budget = Budget::new(500);
        let err = join(
            &graph,
            JoinAlgo::NestedLoop,
            &[],
            &left,
            &la,
            &right,
            &lb,
            &mut budget,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { .. }));
    }

    #[test]
    fn reversed_layout_flips_condition() {
        // Join with b as the left input: the condition must flip.
        let (graph, la, lb) = setup();
        let left = rows(&[(2, 200)]);
        let right = rows(&[(2, 20)]);
        let mut budget = Budget::new(1000);
        let (out, _) = join(
            &graph,
            JoinAlgo::Hash,
            &[0],
            &left,
            &lb,
            &right,
            &la,
            &mut budget,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
    }
}
