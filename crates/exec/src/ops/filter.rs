//! Selection-vector predicate kernels.
//!
//! [`super::scan::ScanSpec`] compiles each resolved selection into a
//! [`Pred`]: a typed kernel bound to one table column's physical
//! encoding. A kernel evaluates a whole column window at a time into a
//! selection vector of passing row ids ([`Pred::filter_range`]);
//! predicate conjunction is selection-vector intersection
//! ([`Pred::refine`]). Literal resolution happens once per scan, not
//! once per row:
//!
//! - a literal against a dictionary-coded column becomes a per-code
//!   verdict mask, so the loop compares `u32` codes and never touches an
//!   `Arc<str>`;
//! - run-length-encoded columns are evaluated once per *run*, accepting
//!   or rejecting whole runs at a time (the selection vector still lists
//!   individual rows, keeping work accounting and output order
//!   encoding-invariant);
//! - numeric literals are unwrapped to `i64`/`f64` so the loops are
//!   monomorphic comparisons over dense slices.
//!
//! Semantics are pinned to the row engine: every kernel decides exactly
//! `eval_cmp(op, column.get(row), literal)` — three-valued logic
//! collapsed to bool (NULL ⇒ false), cross-numeric comparison through
//! `f64`, and `partial_cmp` failures collapsing to `Equal` exactly like
//! `Value::total_cmp`. The last rule is what pins NaN: `x = NaN`
//! accepts every non-NULL numeric row and `x < NaN` accepts none, in
//! both engines, and `-0.0` compares equal to `0.0`.

use super::{eval_cmp, ord_satisfies};
use hfqo_sql::CompareOp;
use hfqo_storage::{ColumnVector, RleColumn, RleValues, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// A selection compiled against one table column's physical encoding.
#[derive(Debug, Clone)]
pub(crate) struct Pred {
    /// Table column index the kernel reads.
    col: usize,
    kernel: Kernel,
}

#[derive(Debug, Clone)]
enum Kernel {
    /// Integer column (plain or RLE) vs integer literal.
    Int { accept: [bool; 3], lit: i64 },
    /// Integer column vs float literal: compared through `f64`, exactly
    /// like `Value::total_cmp`'s cross-numeric rule.
    IntFloat { accept: [bool; 3], lit: f64 },
    /// Float column vs numeric literal.
    Float { accept: [bool; 3], lit: f64 },
    /// Plain text column vs string literal (byte order).
    Str { accept: [bool; 3], lit: Arc<str> },
    /// Dictionary-coded column (plain or RLE): the literal is resolved
    /// against the dictionary once into a per-code verdict.
    CodeMask { mask: Vec<bool> },
    /// Mixed-type pair (e.g. string literal on an int column): per-row
    /// `Value` semantics, identical to the row engine.
    Generic { op: CompareOp, lit: Value },
}

/// Branch-free acceptance table indexed by [`ord_idx`]: whether `op` is
/// satisfied by Less / Equal / Greater.
fn accepts(op: CompareOp) -> [bool; 3] {
    [Ordering::Less, Ordering::Equal, Ordering::Greater].map(|o| ord_satisfies(op, o))
}

/// Maps an `Ordering` to its [`accepts`] slot (Less/Equal/Greater are
/// -1/0/1 as `i8`).
#[inline]
fn ord_idx(ord: Ordering) -> usize {
    (ord as i8 + 1) as usize
}

impl Pred {
    /// Compiles `column <op> lit` against the column's physical
    /// encoding. `col_idx` is the table column index; `col` the column
    /// itself (encodings are fixed for the lifetime of a scan — the
    /// spec borrows the table).
    pub(crate) fn compile(col_idx: usize, op: CompareOp, lit: Value, col: &ColumnVector) -> Pred {
        let acc = accepts(op);
        let kernel = match (col, &lit) {
            (ColumnVector::Int(..), Value::Int(x)) => Kernel::Int {
                accept: acc,
                lit: *x,
            },
            (ColumnVector::Int(..), Value::Float(x)) => Kernel::IntFloat {
                accept: acc,
                lit: *x,
            },
            (ColumnVector::Float(..), Value::Int(x)) => Kernel::Float {
                accept: acc,
                lit: *x as f64,
            },
            (ColumnVector::Float(..), Value::Float(x)) => Kernel::Float {
                accept: acc,
                lit: *x,
            },
            (ColumnVector::Str(..), Value::Str(s)) => Kernel::Str {
                accept: acc,
                lit: Arc::clone(s),
            },
            (ColumnVector::Dict(_, _, dict), _) => code_mask(op, dict, &lit),
            (ColumnVector::Rle(r), _) => match (&r.values, &lit) {
                (RleValues::Int(_), Value::Int(x)) => Kernel::Int {
                    accept: acc,
                    lit: *x,
                },
                (RleValues::Int(_), Value::Float(x)) => Kernel::IntFloat {
                    accept: acc,
                    lit: *x,
                },
                (RleValues::Dict(_, dict), _) => code_mask(op, dict, &lit),
                _ => Kernel::Generic { op, lit },
            },
            _ => Kernel::Generic { op, lit },
        };
        Pred {
            col: col_idx,
            kernel,
        }
    }

    /// Appends to `sel` the ids of rows in `start..end` that pass the
    /// predicate, in ascending order.
    pub(crate) fn filter_range(
        &self,
        cols: &[ColumnVector],
        start: usize,
        end: usize,
        sel: &mut Vec<u32>,
    ) {
        let col = &cols[self.col];
        match (col, &self.kernel) {
            (ColumnVector::Int(v, n), Kernel::Int { accept, lit }) => {
                push_if(start, end, sel, |i| n[i] && accept[ord_idx(v[i].cmp(lit))]);
            }
            (ColumnVector::Int(v, n), Kernel::IntFloat { accept, lit }) => {
                push_if(start, end, sel, |i| {
                    n[i] && accept[ord_idx(cmp_f64(v[i] as f64, *lit))]
                });
            }
            (ColumnVector::Float(v, n), Kernel::Float { accept, lit }) => {
                push_if(start, end, sel, |i| {
                    n[i] && accept[ord_idx(cmp_f64(v[i], *lit))]
                });
            }
            (ColumnVector::Str(v, n), Kernel::Str { accept, lit }) => {
                push_if(start, end, sel, |i| {
                    n[i] && accept[ord_idx(v[i].as_ref().cmp(lit.as_ref()))]
                });
            }
            (ColumnVector::Dict(codes, n, _), Kernel::CodeMask { mask }) => {
                push_if(start, end, sel, |i| n[i] && mask[codes[i] as usize]);
            }
            (ColumnVector::Rle(r), kernel) => {
                // Run-aware: one verdict per run, whole runs accepted or
                // rejected at once.
                let mut k = r.run_of(start);
                let mut row = start;
                while row < end {
                    let stop = r.run_end(k).min(end);
                    if run_passes(r, k, kernel) {
                        sel.extend(row as u32..stop as u32);
                    }
                    row = stop;
                    k += 1;
                }
            }
            (col, Kernel::Generic { op, lit }) => {
                push_if(start, end, sel, |i| eval_cmp(*op, &col.get(i), lit));
            }
            _ => unreachable!("kernel compiled for a different column encoding"),
        }
    }

    /// Keeps only the selected rows that also pass this predicate — the
    /// conjunction step. Selection vectors are ascending (filter_range
    /// and the index probes produce them that way), which the RLE run
    /// cursor exploits.
    pub(crate) fn refine(&self, cols: &[ColumnVector], sel: &mut Vec<u32>) {
        let col = &cols[self.col];
        match (col, &self.kernel) {
            (ColumnVector::Int(v, n), Kernel::Int { accept, lit }) => {
                keep_if(sel, |i| n[i] && accept[ord_idx(v[i].cmp(lit))]);
            }
            (ColumnVector::Int(v, n), Kernel::IntFloat { accept, lit }) => {
                keep_if(sel, |i| n[i] && accept[ord_idx(cmp_f64(v[i] as f64, *lit))]);
            }
            (ColumnVector::Float(v, n), Kernel::Float { accept, lit }) => {
                keep_if(sel, |i| n[i] && accept[ord_idx(cmp_f64(v[i], *lit))]);
            }
            (ColumnVector::Str(v, n), Kernel::Str { accept, lit }) => {
                keep_if(sel, |i| {
                    n[i] && accept[ord_idx(v[i].as_ref().cmp(lit.as_ref()))]
                });
            }
            (ColumnVector::Dict(codes, n, _), Kernel::CodeMask { mask }) => {
                keep_if(sel, |i| n[i] && mask[codes[i] as usize]);
            }
            (ColumnVector::Rle(r), kernel) => {
                let mut k = 0usize;
                keep_if(sel, |row| {
                    k = r.seek(k, row);
                    run_passes(r, k, kernel)
                });
            }
            (col, Kernel::Generic { op, lit }) => {
                keep_if(sel, |i| eval_cmp(*op, &col.get(i), lit));
            }
            _ => unreachable!("kernel compiled for a different column encoding"),
        }
    }
}

/// Resolves a literal against a dictionary once: `mask[code]` is the
/// row verdict for every row carrying `code`. Works for any literal
/// type because each distinct value goes through [`eval_cmp`], the same
/// comparison the row engine applies per row.
fn code_mask(op: CompareOp, dict: &[Arc<str>], lit: &Value) -> Kernel {
    let mask = dict
        .iter()
        .map(|v| eval_cmp(op, &Value::Str(Arc::clone(v)), lit))
        .collect();
    Kernel::CodeMask { mask }
}

/// One verdict for all rows of run `k`. NULL runs never pass, exactly
/// like NULL rows under `eval_cmp`.
#[inline]
fn run_passes(r: &RleColumn, k: usize, kernel: &Kernel) -> bool {
    if !r.valid[k] {
        return false;
    }
    match (&r.values, kernel) {
        (RleValues::Int(vals), Kernel::Int { accept, lit }) => accept[ord_idx(vals[k].cmp(lit))],
        (RleValues::Int(vals), Kernel::IntFloat { accept, lit }) => {
            accept[ord_idx(cmp_f64(vals[k] as f64, *lit))]
        }
        (RleValues::Dict(codes, _), Kernel::CodeMask { mask }) => mask[codes[k] as usize],
        (_, Kernel::Generic { op, lit }) => eval_cmp(*op, &r.run_value(k), lit),
        _ => unreachable!("kernel compiled for a different column encoding"),
    }
}

/// `Value::total_cmp`'s float rule: incomparable pairs (NaN on either
/// side) collapse to `Equal`; `-0.0 == 0.0` by IEEE comparison.
#[inline]
fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

/// Pushes every `i` in `start..end` passing `test` — monomorphised per
/// call site so each kernel is a tight loop over dense slices.
#[inline]
fn push_if(start: usize, end: usize, sel: &mut Vec<u32>, mut test: impl FnMut(usize) -> bool) {
    for i in start..end {
        if test(i) {
            sel.push(i as u32);
        }
    }
}

/// In-place compaction keeping the selected rows passing `test`.
#[inline]
fn keep_if(sel: &mut Vec<u32>, mut test: impl FnMut(usize) -> bool) {
    let mut w = 0usize;
    for i in 0..sel.len() {
        let rid = sel[i];
        if test(rid as usize) {
            sel[w] = rid;
            w += 1;
        }
    }
    sel.truncate(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::ColumnType;

    fn int_col(vals: &[Option<i64>]) -> ColumnVector {
        let mut c = ColumnVector::new(ColumnType::Int);
        for v in vals {
            c.push(&v.map_or(Value::Null, Value::Int));
        }
        c
    }

    fn expected(col: &ColumnVector, op: CompareOp, lit: &Value) -> Vec<u32> {
        (0..col.len())
            .filter(|&i| eval_cmp(op, &col.get(i), lit))
            .map(|i| i as u32)
            .collect()
    }

    fn kernel_range(col: &ColumnVector, op: CompareOp, lit: Value) -> Vec<u32> {
        let cols = std::slice::from_ref(col);
        let pred = Pred::compile(0, op, lit, col);
        let mut sel = Vec::new();
        pred.filter_range(cols, 0, col.len(), &mut sel);
        sel
    }

    #[test]
    fn kernels_match_row_semantics_per_encoding() {
        use CompareOp::*;
        let plain = int_col(&[
            Some(5),
            Some(5),
            None,
            Some(7),
            Some(7),
            Some(7),
            Some(3),
            None,
        ]);
        let rle = plain.rle_encoded(1).unwrap();
        let mut strs = ColumnVector::new(ColumnType::Text);
        for s in ["b", "b", "a", "c", "c"] {
            strs.push(&Value::str(s));
        }
        strs.push(&Value::Null);
        let dict = strs.dictionary_encoded(16).unwrap();
        let dict_rle = dict.rle_encoded(1).unwrap();
        let ops = [Eq, Neq, Lt, Le, Gt, Ge];
        for op in ops {
            for lit in [Value::Int(5), Value::Int(7), Value::Float(5.5), Value::Null] {
                let want = expected(&plain, op, &lit);
                assert_eq!(kernel_range(&plain, op, lit.clone()), want, "{op:?} {lit}");
                assert_eq!(
                    kernel_range(&rle, op, lit.clone()),
                    want,
                    "rle {op:?} {lit}"
                );
            }
            for lit in [Value::str("b"), Value::str("bb"), Value::Int(1)] {
                let want = expected(&strs, op, &lit);
                assert_eq!(kernel_range(&strs, op, lit.clone()), want, "{op:?} {lit}");
                assert_eq!(
                    kernel_range(&dict, op, lit.clone()),
                    want,
                    "dict {op:?} {lit}"
                );
                assert_eq!(
                    kernel_range(&dict_rle, op, lit.clone()),
                    want,
                    "dict+rle {op:?} {lit}"
                );
            }
        }
    }

    #[test]
    fn nan_and_negative_zero_match_value_semantics() {
        use CompareOp::*;
        let mut floats = ColumnVector::new(ColumnType::Float);
        for v in [1.0, f64::NAN, -0.0, 0.0, -1.5] {
            floats.push(&Value::Float(v));
        }
        floats.push(&Value::Null);
        for op in [Eq, Neq, Lt, Le, Gt, Ge] {
            for lit in [
                Value::Float(f64::NAN),
                Value::Float(-0.0),
                Value::Float(0.0),
                Value::Int(0),
            ] {
                let want = expected(&floats, op, &lit);
                assert_eq!(
                    kernel_range(&floats, op, lit.clone()),
                    want,
                    "{op:?} {lit:?}"
                );
            }
        }
        // The pinned behaviour itself: NaN compares Equal to every
        // number (Value::total_cmp collapses incomparable pairs), so
        // `= NaN` accepts all non-NULL rows and `< NaN` none.
        assert_eq!(
            kernel_range(&floats, Eq, Value::Float(f64::NAN)),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(kernel_range(&floats, Lt, Value::Float(f64::NAN)), vec![]);
        // -0.0 == 0.0: IEEE equality, not bit equality.
        assert_eq!(
            kernel_range(&floats, Eq, Value::Float(-0.0)),
            kernel_range(&floats, Eq, Value::Float(0.0))
        );
    }

    #[test]
    fn refine_intersects_selections() {
        let a = int_col(&[Some(1), Some(2), Some(3), Some(4), Some(5)]);
        let b = int_col(&[Some(9), Some(9), Some(0), Some(9), Some(0)]);
        let cols = vec![a, b];
        let ge2 = Pred::compile(0, CompareOp::Ge, Value::Int(2), &cols[0]);
        let eq9 = Pred::compile(1, CompareOp::Eq, Value::Int(9), &cols[1]);
        let mut sel = Vec::new();
        ge2.filter_range(&cols, 0, 5, &mut sel);
        assert_eq!(sel, vec![1, 2, 3, 4]);
        eq9.refine(&cols, &mut sel);
        assert_eq!(sel, vec![1, 3]);
    }
}
