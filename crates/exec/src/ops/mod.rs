//! Physical operators.
//!
//! All operators are materialising: they consume whole input row vectors
//! and produce whole output row vectors, charging every unit of work
//! against the executor's budget. Blocking operators keep the engine small
//! and make work accounting exact, which the budget semantics rely on.

pub mod agg;
pub mod join;
pub mod scan;

use crate::error::ExecError;
use hfqo_sql::CompareOp;
use hfqo_storage::Value;
use std::cmp::Ordering;

/// Evaluates a SQL comparison with three-valued logic collapsed to a
/// boolean (NULL comparisons are false, as in a WHERE clause).
#[inline]
pub fn eval_cmp(op: CompareOp, a: &Value, b: &Value) -> bool {
    match a.sql_cmp(b) {
        None => false,
        Some(ord) => match op {
            CompareOp::Eq => ord == Ordering::Equal,
            CompareOp::Neq => ord != Ordering::Equal,
            CompareOp::Lt => ord == Ordering::Less,
            CompareOp::Le => ord != Ordering::Greater,
            CompareOp::Gt => ord == Ordering::Greater,
            CompareOp::Ge => ord != Ordering::Less,
        },
    }
}

/// Work-budget accountant shared by all operators.
#[derive(Debug)]
pub struct Budget {
    /// Work performed so far (row visits, comparisons, emitted rows).
    pub work: u64,
    /// Maximum allowed work.
    pub limit: u64,
}

impl Budget {
    /// A budget with the given limit.
    pub fn new(limit: u64) -> Self {
        Self { work: 0, limit }
    }

    /// Charges `n` units, failing when the budget is exhausted.
    #[inline]
    pub fn charge(&mut self, n: u64) -> Result<(), ExecError> {
        self.work += n;
        if self.work > self.limit {
            Err(ExecError::BudgetExceeded {
                work_done: self.work,
                budget: self.limit,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_semantics() {
        assert!(eval_cmp(CompareOp::Eq, &Value::Int(1), &Value::Int(1)));
        assert!(eval_cmp(CompareOp::Lt, &Value::Int(1), &Value::Int(2)));
        assert!(eval_cmp(CompareOp::Ge, &Value::Int(2), &Value::Int(2)));
        assert!(!eval_cmp(CompareOp::Eq, &Value::Null, &Value::Null));
        assert!(!eval_cmp(CompareOp::Neq, &Value::Null, &Value::Int(1)));
        assert!(eval_cmp(CompareOp::Neq, &Value::str("a"), &Value::str("b")));
    }

    #[test]
    fn budget_charges_and_trips() {
        let mut b = Budget::new(10);
        assert!(b.charge(5).is_ok());
        assert!(b.charge(5).is_ok());
        let err = b.charge(1).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { work_done: 11, budget: 10 }));
    }
}
