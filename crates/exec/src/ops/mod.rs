//! Vectorized physical operators.
//!
//! Each operator implements [`crate::operator::Operator`]: it pulls
//! columnar [`crate::batch::Batch`]es from its children and produces
//! capacity-bounded output batches, charging every unit of work (row
//! visits, comparisons, emitted rows) against the shared [`Budget`].
//! Charge *totals* are identical to the reference row engine's
//! ([`crate::rowexec`]) — the equivalence suite asserts it — so budget
//! semantics, catastrophic-plan aborts, and reward shaping are unchanged
//! by vectorization; only the per-batch abort granularity differs.

pub mod agg;
pub(crate) mod filter;
pub mod join;
pub mod scan;

use crate::error::ExecError;
use hfqo_sql::CompareOp;
use hfqo_storage::Value;
use std::cmp::Ordering;

/// Whether `ord` satisfies `op`.
#[inline]
fn ord_satisfies(op: CompareOp, ord: Ordering) -> bool {
    match op {
        CompareOp::Eq => ord == Ordering::Equal,
        CompareOp::Neq => ord != Ordering::Equal,
        CompareOp::Lt => ord == Ordering::Less,
        CompareOp::Le => ord != Ordering::Greater,
        CompareOp::Gt => ord == Ordering::Greater,
        CompareOp::Ge => ord != Ordering::Less,
    }
}

/// Evaluates a SQL comparison with three-valued logic collapsed to a
/// boolean (NULL comparisons are false, as in a WHERE clause).
#[inline]
pub fn eval_cmp(op: CompareOp, a: &Value, b: &Value) -> bool {
    match a.sql_cmp(b) {
        None => false,
        Some(ord) => ord_satisfies(op, ord),
    }
}

/// [`eval_cmp`] directly over column storage — no [`Value`]
/// materialisation (and no `Arc` clone for text) per comparison; this
/// is the join operators' per-candidate hot path.
#[inline]
pub fn eval_cmp_cols(
    op: CompareOp,
    a: &hfqo_storage::ColumnVector,
    a_row: usize,
    b: &hfqo_storage::ColumnVector,
    b_row: usize,
) -> bool {
    match a.sql_cmp_at(a_row, b, b_row) {
        None => false,
        Some(ord) => ord_satisfies(op, ord),
    }
}

/// A join condition resolved to input slots: `left[l_slot] <op>
/// right[r_slot]`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotCond {
    pub l_slot: usize,
    pub r_slot: usize,
    pub op: CompareOp,
}

/// Resolves plan-level join-condition indices to input slots, flipping
/// edges whose endpoints sit on opposite inputs. Generic over the slot
/// resolver so the batch engine (`Projection::slot`) and the reference
/// row engine (`Layout::slot`) share one implementation — the engines
/// must resolve conditions identically for the equivalence contract to
/// hold.
pub(crate) fn resolve_conds(
    graph: &hfqo_query::QueryGraph,
    conds: &[usize],
    left_slot: impl Fn(hfqo_query::BoundColumn) -> Option<usize>,
    right_slot: impl Fn(hfqo_query::BoundColumn) -> Option<usize>,
) -> Result<Vec<SlotCond>, ExecError> {
    use hfqo_query::QueryError;
    conds
        .iter()
        .map(|&c| {
            let edge = graph
                .joins()
                .get(c)
                .ok_or_else(|| QueryError::InvalidPlan(format!("join cond #{c} out of range")))?;
            if let (Some(l), Some(r)) = (left_slot(edge.left), right_slot(edge.right)) {
                Ok(SlotCond {
                    l_slot: l,
                    r_slot: r,
                    op: edge.op,
                })
            } else if let (Some(l), Some(r)) = (left_slot(edge.right), right_slot(edge.left)) {
                Ok(SlotCond {
                    l_slot: l,
                    r_slot: r,
                    op: edge.op.flipped(),
                })
            } else {
                Err(
                    QueryError::InvalidPlan(format!("join cond #{c} does not span the two inputs"))
                        .into(),
                )
            }
        })
        .collect()
}

/// The first equality condition, if any (hash/merge join key).
pub(crate) fn first_eq(conds: &[SlotCond]) -> Option<SlotCond> {
    conds.iter().copied().find(|c| c.op == CompareOp::Eq)
}

/// Validates an index-scan access path against the graph and catalog,
/// probes the index with the driving predicate, and returns the
/// matching row ids. Shared by both engines so their index behaviour
/// (and error surface) cannot drift.
pub(crate) fn index_row_ids(
    db: &hfqo_storage::Database,
    graph: &hfqo_query::QueryGraph,
    rel: hfqo_query::RelId,
    index: hfqo_catalog::IndexId,
    driving_selection: usize,
) -> Result<Vec<u32>, ExecError> {
    use hfqo_query::QueryError;
    use hfqo_storage::database::IndexStorage;
    let table_id = graph.relation(rel).table;
    let driving = graph.selections().get(driving_selection).ok_or_else(|| {
        QueryError::InvalidPlan(format!(
            "driving selection #{driving_selection} out of range"
        ))
    })?;
    let def = db.catalog().index(index).map_err(QueryError::from)?;
    if def.table() != table_id || def.column() != driving.column.column {
        return Err(QueryError::InvalidPlan(format!(
            "index `{}` does not cover driving predicate {driving}",
            def.name()
        ))
        .into());
    }
    let storage = db
        .index_storage(index)
        .ok_or_else(|| ExecError::IndexNotBuilt(def.name().to_string()))?;
    let key = crate::row::lit_to_value(&driving.value);
    let mut row_ids: Vec<u32> = Vec::new();
    match (storage, driving.op) {
        (IndexStorage::BTree(b), CompareOp::Eq) => {
            row_ids.extend_from_slice(b.lookup_eq(&key));
        }
        (IndexStorage::BTree(b), CompareOp::Lt) => {
            b.lookup_range(None, true, Some(&key), false, &mut row_ids)
        }
        (IndexStorage::BTree(b), CompareOp::Le) => {
            b.lookup_range(None, true, Some(&key), true, &mut row_ids)
        }
        (IndexStorage::BTree(b), CompareOp::Gt) => {
            b.lookup_range(Some(&key), false, None, true, &mut row_ids)
        }
        (IndexStorage::BTree(b), CompareOp::Ge) => {
            b.lookup_range(Some(&key), true, None, true, &mut row_ids)
        }
        (IndexStorage::Hash(h), CompareOp::Eq) => {
            row_ids.extend_from_slice(h.lookup_eq(&key));
        }
        (_, op) => {
            return Err(QueryError::InvalidPlan(format!(
                "index `{}` ({}) cannot serve operator {}",
                def.name(),
                def.kind().name(),
                op.sql()
            ))
            .into());
        }
    }
    // Hash indexes never serve ranges; double-check kind semantics.
    debug_assert!(
        def.kind() != hfqo_catalog::IndexKind::Hash || driving.op == CompareOp::Eq,
        "validated above"
    );
    Ok(row_ids)
}

/// Work-budget accountant shared by all operators.
#[derive(Debug)]
pub struct Budget {
    /// Work performed so far (row visits, comparisons, emitted rows).
    pub work: u64,
    /// Maximum allowed work.
    pub limit: u64,
}

impl Budget {
    /// A budget with the given limit.
    pub fn new(limit: u64) -> Self {
        Self { work: 0, limit }
    }

    /// Charges `n` units, failing when the budget is exhausted.
    #[inline]
    pub fn charge(&mut self, n: u64) -> Result<(), ExecError> {
        self.work += n;
        if self.work > self.limit {
            Err(ExecError::BudgetExceeded {
                work_done: self.work,
                budget: self.limit,
            })
        } else {
            Ok(())
        }
    }

    /// Bulk-charges `n` single-unit rows with the same trip point and
    /// the same `work_done` at abort as calling [`Budget::charge`]`(1)`
    /// `n` times — vectorized operators charge whole windows without
    /// changing the exhaustion state the per-row engine would report.
    #[inline]
    pub fn charge_rows(&mut self, n: u64) -> Result<(), ExecError> {
        let headroom = self.limit.saturating_sub(self.work);
        if n > headroom {
            self.charge(headroom + 1)
        } else {
            self.charge(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_semantics() {
        assert!(eval_cmp(CompareOp::Eq, &Value::Int(1), &Value::Int(1)));
        assert!(eval_cmp(CompareOp::Lt, &Value::Int(1), &Value::Int(2)));
        assert!(eval_cmp(CompareOp::Ge, &Value::Int(2), &Value::Int(2)));
        assert!(!eval_cmp(CompareOp::Eq, &Value::Null, &Value::Null));
        assert!(!eval_cmp(CompareOp::Neq, &Value::Null, &Value::Int(1)));
        assert!(eval_cmp(CompareOp::Neq, &Value::str("a"), &Value::str("b")));
    }

    #[test]
    fn budget_charges_and_trips() {
        let mut b = Budget::new(10);
        assert!(b.charge(5).is_ok());
        assert!(b.charge(5).is_ok());
        let err = b.charge(1).unwrap_err();
        assert!(matches!(
            err,
            ExecError::BudgetExceeded {
                work_done: 11,
                budget: 10
            }
        ));
    }
}
