//! Executor errors.

use hfqo_query::QueryError;
use hfqo_storage::StorageError;
use std::fmt;

/// Errors raised during plan execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The work budget was exhausted (the plan is catastrophically bad, or
    /// the budget was configured too low).
    BudgetExceeded {
        /// Rows of work performed before aborting.
        work_done: u64,
        /// The configured budget.
        budget: u64,
    },
    /// Plan-shape problem discovered at runtime.
    Plan(QueryError),
    /// Storage-level failure.
    Storage(StorageError),
    /// An index scan referenced an index that has not been built.
    IndexNotBuilt(String),
    /// An aggregate was applied to an incompatible value.
    BadAggregate(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BudgetExceeded { work_done, budget } => write!(
                f,
                "execution budget exceeded: {work_done} rows of work against a budget of {budget}"
            ),
            Self::Plan(e) => write!(f, "plan error: {e}"),
            Self::Storage(e) => write!(f, "storage error: {e}"),
            Self::IndexNotBuilt(name) => write!(f, "index `{name}` has not been built"),
            Self::BadAggregate(msg) => write!(f, "bad aggregate: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Plan(e) => Some(e),
            Self::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for ExecError {
    fn from(e: QueryError) -> Self {
        Self::Plan(e)
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ExecError::BudgetExceeded {
            work_done: 100,
            budget: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("50"));
    }
}
