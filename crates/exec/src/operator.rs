//! The pull-based operator pipeline and its projection planner.
//!
//! [`Operator`] is the vectorized Volcano interface: `open` prepares
//! blocking state (hash tables, sort runs), `next_batch` pulls one
//! columnar [`Batch`] at a time, `close` releases state. The pipeline
//! builder walks a [`PlanNode`] tree and computes, per node, the
//! **projection** — the minimal ordered set of columns the node's output
//! must carry — from the columns the query graph references above that
//! node:
//!
//! * the facade's required output (every column for a plain query, the
//!   `GROUP BY` keys plus aggregate inputs for an aggregated one, none
//!   for pure counting pipelines such as the true-cardinality oracle),
//! * plus, at every join, the columns of the join conditions applied
//!   there (pushed down to the inputs, dropped again immediately above
//!   the join when nothing else references them).
//!
//! Projection order is always *leaf order, column-id order within a
//! leaf*, so a fully-required projection is slot-identical to the row
//! engine's [`Layout`](crate::row::Layout) and the two engines emit rows
//! with identical column ordering.

use crate::batch::{Batch, Projection};
use crate::error::ExecError;
use crate::ops::{agg::AggOp, join::JoinOp, scan::ScanOp, Budget};
use hfqo_query::{BoundColumn, PlanNode, QueryError, QueryGraph, RelId};
use hfqo_storage::{ColumnVector, Database};

/// A vectorized physical operator.
///
/// Pipelines are **single-use**: call [`Operator::open`] once, pull
/// [`Operator::next_batch`] until it returns `None`, then
/// [`Operator::close`] once. Reopening a drained pipeline is not
/// supported — build a fresh one with
/// [`build_pipeline`] (construction is cheap; all heavy state is built
/// in `open`).
pub trait Operator {
    /// The bound columns this operator's batches carry, in slot order —
    /// `None` when the output is computed rather than projected
    /// (aggregation).
    fn projection(&self) -> Option<&Projection>;

    /// Prepares blocking state (drains build sides, runs sorts). Work
    /// performed here is charged against `budget` exactly as the row
    /// engine charges it.
    fn open(&mut self, budget: &mut Budget) -> Result<(), ExecError>;

    /// Pulls the next batch; `None` when the input is exhausted.
    fn next_batch(&mut self, budget: &mut Budget) -> Result<Option<Batch>, ExecError>;

    /// Releases operator state.
    fn close(&mut self);
}

/// An unordered set of bound columns (small; stored as a vector to avoid
/// requiring `Ord` on [`BoundColumn`]).
#[derive(Debug, Clone, Default)]
pub struct ColSet {
    cols: Vec<BoundColumn>,
}

impl ColSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a column.
    pub fn insert(&mut self, col: BoundColumn) {
        if !self.cols.contains(&col) {
            self.cols.push(col);
        }
    }

    /// Membership test.
    pub fn contains(&self, col: BoundColumn) -> bool {
        self.cols.contains(&col)
    }

    /// A copy with `extra` added.
    pub fn with(&self, extra: impl IntoIterator<Item = BoundColumn>) -> Self {
        let mut s = self.clone();
        for c in extra {
            s.insert(c);
        }
        s
    }
}

/// Every column of every relation in `graph` — the facade's required set
/// for plain (non-aggregated) queries, which makes the batch engine's
/// output column-identical to the row engine's.
pub fn all_columns(graph: &QueryGraph, db: &Database) -> ColSet {
    let mut set = ColSet::new();
    for (i, rel) in graph.relations().iter().enumerate() {
        let arity = db
            .catalog()
            .table(rel.table)
            .map(|t| t.arity())
            .unwrap_or(0);
        for c in 0..arity {
            set.insert(BoundColumn::new(
                RelId(i as u32),
                hfqo_catalog::ColumnId(c as u32),
            ));
        }
    }
    set
}

/// The required set for an aggregation input: `GROUP BY` keys plus
/// aggregate input columns.
pub fn aggregate_inputs(graph: &QueryGraph) -> ColSet {
    let mut set = ColSet::new();
    for c in graph.group_by() {
        set.insert(*c);
    }
    for a in graph.aggregates() {
        if let Some(c) = a.column {
            set.insert(c);
        }
    }
    set
}

/// Builds the operator pipeline for `node`, carrying exactly the columns
/// in `required` (plus whatever each join needs internally).
pub fn build_pipeline<'a>(
    db: &'a Database,
    graph: &'a QueryGraph,
    node: &PlanNode,
    required: &ColSet,
) -> Result<Box<dyn Operator + 'a>, ExecError> {
    match node {
        PlanNode::Scan { rel, path } => {
            let projection = scan_projection(graph, db, *rel, required);
            Ok(Box::new(ScanOp::new(db, graph, *rel, path, projection)?))
        }
        PlanNode::Join {
            algo,
            conds,
            left,
            right,
        } => {
            // Children must additionally carry this join's condition
            // columns; they are dropped again from this node's output
            // unless an ancestor requires them.
            let mut cond_cols = Vec::new();
            for &c in conds {
                let edge = graph.joins().get(c).ok_or_else(|| {
                    QueryError::InvalidPlan(format!("join cond #{c} out of range"))
                })?;
                cond_cols.push(edge.left);
                cond_cols.push(edge.right);
            }
            let child_required = required.with(cond_cols);
            let left_op = build_pipeline(db, graph, left, &child_required)?;
            let right_op = build_pipeline(db, graph, right, &child_required)?;
            Ok(Box::new(JoinOp::new(
                graph,
                db.catalog(),
                *algo,
                conds,
                left_op,
                right_op,
                required,
            )?))
        }
        PlanNode::Aggregate { algo, input } => {
            let input_required = aggregate_inputs(graph);
            let input_op = build_pipeline(db, graph, input, &input_required)?;
            Ok(Box::new(AggOp::new(graph, db.catalog(), *algo, input_op)?))
        }
    }
}

/// A scan's output projection: the required columns of `rel`, in
/// column-id order.
pub(crate) fn scan_projection(
    graph: &QueryGraph,
    db: &Database,
    rel: RelId,
    required: &ColSet,
) -> Projection {
    let arity = db
        .catalog()
        .table(graph.relation(rel).table)
        .map(|t| t.arity())
        .unwrap_or(0);
    let cols = (0..arity)
        .map(|c| BoundColumn::new(rel, hfqo_catalog::ColumnId(c as u32)))
        .filter(|&c| required.contains(c))
        .collect();
    Projection::new(cols)
}

/// A fully-drained operator output, stored as unbounded column vectors —
/// the build side of hash joins and both sides of sort-merge joins.
#[derive(Debug)]
pub struct Materialized {
    /// One unbounded column per projected slot.
    pub cols: Vec<ColumnVector>,
    /// Total row count (tracked separately: zero-width outputs exist).
    pub rows: usize,
}

impl Materialized {
    /// Drains `child` (whose projection is `width` columns wide)
    /// completely; column types are taken from the first batch. Draining
    /// itself charges nothing — the producing operators already charged
    /// their work — matching the row engine, where child outputs exist
    /// before the join starts.
    pub fn drain(
        child: &mut dyn Operator,
        width: usize,
        budget: &mut Budget,
    ) -> Result<Self, ExecError> {
        let mut cols: Option<Vec<ColumnVector>> = None;
        let mut rows = 0usize;
        while let Some(batch) = child.next_batch(budget)? {
            rows += batch.rows();
            let cols = cols.get_or_insert_with(|| {
                (0..width)
                    .map(|s| ColumnVector::new(batch.column(s).ty()))
                    .collect()
            });
            for (slot, col) in cols.iter_mut().enumerate() {
                col.append_column(batch.column(slot));
            }
        }
        Ok(Self {
            cols: cols.unwrap_or_default(),
            rows,
        })
    }

    /// The value at (`slot`, `row`). Only valid for `row < rows` and, on
    /// inputs that produced no batches, never reachable (`rows == 0`).
    #[inline]
    pub fn value_at(&self, slot: usize, row: usize) -> hfqo_storage::Value {
        self.cols[slot].get(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, TableSchema};
    use hfqo_query::{AccessPath, AggExpr, JoinAlgo, JoinEdge, Relation, Selection};
    use hfqo_sql::{AggFunc, CompareOp};
    use hfqo_storage::Value;

    /// Two tables a(k, v, pad), b(k, w); query joins a.k = b.k with a
    /// selection on a.v and COUNT(*) + SUM(b.w).
    fn setup() -> (Database, QueryGraph) {
        let mut cat = Catalog::new();
        let a = cat
            .add_table(TableSchema::new(
                "a",
                vec![
                    Column::new("k", ColumnType::Int),
                    Column::new("v", ColumnType::Int),
                    Column::new("pad", ColumnType::Text),
                ],
            ))
            .unwrap();
        let b = cat
            .add_table(TableSchema::new(
                "b",
                vec![
                    Column::new("k", ColumnType::Int),
                    Column::new("w", ColumnType::Int),
                ],
            ))
            .unwrap();
        let mut db = Database::new(cat);
        for i in 0..10i64 {
            db.table_mut(a)
                .unwrap()
                .append_row(&[Value::Int(i), Value::Int(i % 3), Value::str("x")])
                .unwrap();
            db.table_mut(b)
                .unwrap()
                .append_row(&[Value::Int(i % 5), Value::Int(i)])
                .unwrap();
        }
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: a,
                    alias: "a".into(),
                },
                Relation {
                    table: b,
                    alias: "b".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(0)),
            }],
            vec![Selection {
                column: BoundColumn::new(RelId(0), ColumnId(1)),
                op: CompareOp::Eq,
                value: hfqo_query::Lit::Int(0),
            }],
            vec![
                AggExpr {
                    func: AggFunc::Count,
                    column: None,
                },
                AggExpr {
                    func: AggFunc::Sum,
                    column: Some(BoundColumn::new(RelId(1), ColumnId(1))),
                },
            ],
            vec![],
        );
        (db, graph)
    }

    fn join_node() -> PlanNode {
        PlanNode::Join {
            algo: JoinAlgo::Hash,
            conds: vec![0],
            left: Box::new(PlanNode::Scan {
                rel: RelId(0),
                path: AccessPath::SeqScan,
            }),
            right: Box::new(PlanNode::Scan {
                rel: RelId(1),
                path: AccessPath::SeqScan,
            }),
        }
    }

    #[test]
    fn full_requirement_matches_row_layout_order() {
        let (db, graph) = setup();
        let required = all_columns(&graph, &db);
        let op = build_pipeline(&db, &graph, &join_node(), &required).unwrap();
        let proj = op.projection().expect("joins are projected");
        let cols: Vec<(u32, u32)> = proj
            .columns()
            .iter()
            .map(|c| (c.rel.0, c.column.0))
            .collect();
        // Leaf order (a then b), column-id order within each leaf — the
        // row engine's layout.
        assert_eq!(cols, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)]);
    }

    #[test]
    fn aggregate_requirement_prunes_unreferenced_columns() {
        let (db, graph) = setup();
        let required = aggregate_inputs(&graph);
        let op = build_pipeline(&db, &graph, &join_node(), &required).unwrap();
        let proj = op.projection().unwrap();
        // Only b.w survives above the join: a.k/b.k are consumed by the
        // join itself, a.v by the scan filter, a.pad by nothing.
        let cols: Vec<(u32, u32)> = proj
            .columns()
            .iter()
            .map(|c| (c.rel.0, c.column.0))
            .collect();
        assert_eq!(cols, vec![(1, 1)]);
    }

    #[test]
    fn empty_requirement_yields_zero_width_pipeline() {
        let (db, graph) = setup();
        let op = build_pipeline(&db, &graph, &join_node(), &ColSet::new()).unwrap();
        assert_eq!(op.projection().unwrap().width(), 0);
    }

    #[test]
    fn pipeline_counts_match_row_semantics() {
        let (db, graph) = setup();
        // a.v = 0 keeps a ids {0, 3, 6, 9}; b.k = i % 5 has 2 rows per
        // key in 0..5 → ids 0 and 3 match 2 rows each, 6/9 none.
        let mut op = build_pipeline(&db, &graph, &join_node(), &ColSet::new()).unwrap();
        let mut budget = Budget::new(1_000_000);
        op.open(&mut budget).unwrap();
        let mut rows = 0;
        while let Some(b) = op.next_batch(&mut budget).unwrap() {
            rows += b.rows();
        }
        op.close();
        assert_eq!(rows, 4);
        assert!(budget.work > 0);
    }

    #[test]
    fn colset_deduplicates() {
        let c = BoundColumn::new(RelId(0), ColumnId(0));
        let mut s = ColSet::new();
        s.insert(c);
        s.insert(c);
        assert!(s.contains(c));
        let s2 = s.with([BoundColumn::new(RelId(1), ColumnId(2)), c]);
        assert!(s2.contains(BoundColumn::new(RelId(1), ColumnId(2))));
        assert!(!s.contains(BoundColumn::new(RelId(1), ColumnId(2))));
    }
}
