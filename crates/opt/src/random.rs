//! Random plan generation (the floor baseline).

use hfqo_catalog::Catalog;
use hfqo_query::{AccessPath, AggAlgo, Forest, JoinAlgo, PhysicalPlan, PlanNode, QueryGraph};
use hfqo_sql::CompareOp;
use rand::rngs::StdRng;
use rand::Rng;

/// Produces a uniformly random *valid* physical plan: random merge order
/// over the forest (cross joins allowed, exactly like an untrained RL
/// agent's action space), random access paths among the applicable ones,
/// random join algorithm among the legal ones, random aggregate operator.
///
/// §4's search-space experiment uses this as the floor: a naive full-space
/// DRL agent that fails to learn is indistinguishable from this generator.
pub fn random_plan(graph: &QueryGraph, catalog: &Catalog, rng: &mut StdRng) -> PhysicalPlan {
    let n = graph.relation_count();
    // Random scans.
    let mut nodes: Vec<PlanNode> = graph
        .all_rels()
        .iter()
        .map(|rel| {
            let mut candidates = vec![AccessPath::SeqScan];
            for sel_idx in graph.selections_on(rel) {
                let sel = &graph.selections()[sel_idx];
                if sel.op == CompareOp::Neq {
                    continue;
                }
                let col_ref =
                    hfqo_catalog::ColumnRef::new(graph.relation(rel).table, sel.column.column);
                for (index_id, def) in catalog.indexes_on(col_ref) {
                    let range_op = !matches!(sel.op, CompareOp::Eq);
                    if range_op && !def.kind().supports_range() {
                        continue;
                    }
                    candidates.push(AccessPath::IndexScan {
                        index: index_id,
                        driving_selection: sel_idx,
                    });
                }
            }
            let path = candidates[rng.gen_range(0..candidates.len())];
            PlanNode::Scan { rel, path }
        })
        .collect();
    // Random merge order via the shared forest convention.
    let mut forest = Forest::initial(n);
    while !forest.is_terminal() {
        let len = forest.len();
        let x = rng.gen_range(0..len);
        let mut y = rng.gen_range(0..len);
        while y == x {
            y = rng.gen_range(0..len);
        }
        // Apply the same merge to the physical node list.
        let conds = graph.joins_between(nodes[x].rel_set(), nodes[y].rel_set());
        let has_eq = conds.iter().any(|&c| graph.joins()[c].op == CompareOp::Eq);
        let algos: &[JoinAlgo] = if has_eq {
            &JoinAlgo::ALL
        } else {
            &[JoinAlgo::NestedLoop]
        };
        let algo = algos[rng.gen_range(0..algos.len())];
        let (hi, lo) = if x > y { (x, y) } else { (y, x) };
        let hi_node = nodes.remove(hi);
        let lo_node = nodes.remove(lo);
        let (left, right) = if x < y {
            (lo_node, hi_node)
        } else {
            (hi_node, lo_node)
        };
        nodes.push(PlanNode::Join {
            algo,
            conds,
            left: Box::new(left),
            right: Box::new(right),
        });
        forest.merge(x, y);
    }
    let mut root = nodes.pop().expect("terminal forest has one node");
    if !graph.aggregates().is_empty() || !graph.group_by().is_empty() {
        let algo = AggAlgo::ALL[rng.gen_range(0..AggAlgo::ALL.len())];
        root = PlanNode::Aggregate {
            algo,
            input: Box::new(root),
        };
    }
    PhysicalPlan::new(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_query, star_query, TestDb};
    use rand::SeedableRng;

    #[test]
    fn random_plans_are_always_valid() {
        let db = TestDb::chain(5, 200);
        let graph = chain_query(&db, 5);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let plan = random_plan(&graph, db.db.catalog(), &mut rng);
            plan.validate(&graph).unwrap();
        }
    }

    #[test]
    fn random_plans_vary() {
        let db = TestDb::star(5, 500);
        let graph = star_query(&db, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let plans: Vec<_> = (0..10)
            .map(|_| random_plan(&graph, db.db.catalog(), &mut rng))
            .collect();
        let distinct = plans
            .iter()
            .map(|p| format!("{p:?}"))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 3, "only {distinct} distinct plans in 10 draws");
    }

    #[test]
    fn determinism_per_seed() {
        let db = TestDb::chain(4, 100);
        let graph = chain_query(&db, 4);
        let a = random_plan(&graph, db.db.catalog(), &mut StdRng::seed_from_u64(5));
        let b = random_plan(&graph, db.db.catalog(), &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
