//! Expert traces for learning from demonstration (§5.1).
//!
//! The paper's LfD recipe records, for each workload query, the episode
//! history `H_q = [(a_0, s_0), (a_1, s_1), …]` of the traditional
//! optimizer's decisions plus the resulting latency `L_q`. Here the
//! optimizer's chosen join tree is decompiled into the *exact* forest-merge
//! action sequence the RL environment uses (see
//! [`hfqo_query::tree_to_actions`]), so demonstrations and agent episodes
//! share one action vocabulary.

use crate::optimizer::{OptError, TraditionalOptimizer};
use hfqo_query::{tree_to_actions, PhysicalPlan, QueryGraph};

/// One expert demonstration: the optimizer's action sequence for a query
/// plus its plan and cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpertEpisode {
    /// Forest-merge actions `(x, y)` in episode order.
    pub actions: Vec<(usize, usize)>,
    /// The expert's physical plan.
    pub plan: PhysicalPlan,
    /// The expert plan's estimated cost (`M(t)` — the Phase-1 quality
    /// signal; callers typically overwrite this with measured latency
    /// `L_q` before training, per the paper's step 2).
    pub cost: f64,
}

/// Runs the expert on a query and extracts its demonstration episode.
pub fn expert_actions(
    optimizer: &TraditionalOptimizer<'_>,
    graph: &QueryGraph,
) -> Result<ExpertEpisode, OptError> {
    let planned = optimizer.plan(graph)?;
    let tree = planned.plan.root.join_tree();
    let actions = tree_to_actions(&tree, graph.relation_count());
    Ok(ExpertEpisode {
        actions,
        plan: planned.plan,
        cost: planned.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_query, TestDb};
    use hfqo_query::Forest;

    #[test]
    fn expert_actions_replay_to_expert_tree() {
        let db = TestDb::chain(5, 400);
        let graph = chain_query(&db, 5);
        let opt = TraditionalOptimizer::new(db.db.catalog(), &db.stats);
        let episode = expert_actions(&opt, &graph).unwrap();
        assert_eq!(episode.actions.len(), 4);
        let mut forest = Forest::initial(5);
        for &(x, y) in &episode.actions {
            assert!(forest.merge(x, y), "invalid expert action ({x},{y})");
        }
        let replayed = forest.into_tree().expect("terminal");
        assert_eq!(replayed, episode.plan.root.join_tree());
    }

    #[test]
    fn single_relation_has_no_actions() {
        let db = TestDb::chain(1, 100);
        let graph = chain_query(&db, 1);
        let opt = TraditionalOptimizer::new(db.db.catalog(), &db.stats);
        let episode = expert_actions(&opt, &graph).unwrap();
        assert!(episode.actions.is_empty());
        assert!(episode.cost > 0.0);
    }
}
