//! Access-path and physical-operator selection.

use hfqo_catalog::Catalog;
use hfqo_cost::{CostEstimate, CostModel};
use hfqo_query::{AccessPath, AggAlgo, JoinAlgo, PlanNode, QueryGraph, RelId};
use hfqo_sql::CompareOp;
use hfqo_stats::CardinalitySource;

/// Chooses the cheapest access path for `rel`: a sequential scan, or an
/// index scan driven by any selection predicate that has a matching index
/// (B-trees serve all comparison shapes except `<>`; hash indexes serve
/// only equality).
pub fn best_access_path<C: CardinalitySource>(
    graph: &QueryGraph,
    rel: RelId,
    catalog: &Catalog,
    model: &CostModel<'_>,
    cards: &C,
) -> (PlanNode, CostEstimate) {
    let mut best = PlanNode::Scan {
        rel,
        path: AccessPath::SeqScan,
    };
    let mut best_cost = model.node_cost(graph, &best, cards);
    for sel_idx in graph.selections_on(rel) {
        let sel = &graph.selections()[sel_idx];
        if sel.op == CompareOp::Neq {
            continue; // no index serves <>
        }
        let col_ref = hfqo_catalog::ColumnRef::new(graph.relation(rel).table, sel.column.column);
        for (index_id, def) in catalog.indexes_on(col_ref) {
            let range_op = !matches!(sel.op, CompareOp::Eq);
            if range_op && !def.kind().supports_range() {
                continue;
            }
            let cand = PlanNode::Scan {
                rel,
                path: AccessPath::IndexScan {
                    index: index_id,
                    driving_selection: sel_idx,
                },
            };
            let cost = model.node_cost(graph, &cand, cards);
            if cost.total < best_cost.total {
                best = cand;
                best_cost = cost;
            }
        }
    }
    (best, best_cost)
}

/// Builds the cheapest join of two subplans: tries every algorithm (hash
/// and merge only when an equality condition spans the inputs) and both
/// input orders, returning the winner.
pub fn best_join<C: CardinalitySource>(
    graph: &QueryGraph,
    left: &PlanNode,
    right: &PlanNode,
    model: &CostModel<'_>,
    cards: &C,
) -> (PlanNode, CostEstimate) {
    let conds = graph.joins_between(left.rel_set(), right.rel_set());
    let has_eq = conds.iter().any(|&c| graph.joins()[c].op == CompareOp::Eq);
    let mut best: Option<(PlanNode, CostEstimate)> = None;
    for algo in JoinAlgo::ALL {
        if matches!(algo, JoinAlgo::Hash | JoinAlgo::Merge) && !has_eq {
            continue;
        }
        for flipped in [false, true] {
            let (l, r) = if flipped {
                (right, left)
            } else {
                (left, right)
            };
            let cand = PlanNode::Join {
                algo,
                conds: conds.clone(),
                left: Box::new(l.clone()),
                right: Box::new(r.clone()),
            };
            let cost = model.node_cost(graph, &cand, cards);
            if best.as_ref().is_none_or(|(_, c)| cost.total < c.total) {
                best = Some((cand, cost));
            }
        }
    }
    best.expect("nested loop join is always a candidate")
}

/// Wraps `input` in the cheaper aggregation operator when the query has
/// aggregates; otherwise returns it unchanged.
pub fn add_aggregate_if_needed<C: CardinalitySource>(
    graph: &QueryGraph,
    input: PlanNode,
    model: &CostModel<'_>,
    cards: &C,
) -> PlanNode {
    if graph.aggregates().is_empty() && graph.group_by().is_empty() {
        return input;
    }
    let mut best: Option<(PlanNode, f64)> = None;
    for algo in AggAlgo::ALL {
        let cand = PlanNode::Aggregate {
            algo,
            input: Box::new(input.clone()),
        };
        let cost = model.node_cost(graph, &cand, cards).total;
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((cand, cost));
        }
    }
    best.expect("both aggregate algorithms are candidates").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Column, ColumnId, ColumnStatsMeta, ColumnType, IndexKind, TableSchema};
    use hfqo_cost::CostParams;
    use hfqo_query::{BoundColumn, JoinEdge, Lit, Relation, Selection};
    use hfqo_stats::{ColumnStats, EstimatedCardinality, Histogram, StatsCatalog, TableStats};

    fn setup() -> (Catalog, StatsCatalog, QueryGraph) {
        let mut cat = Catalog::new();
        let a = cat
            .add_table(TableSchema::new(
                "a",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("v", ColumnType::Int),
                ],
            ))
            .unwrap();
        let b = cat
            .add_table(TableSchema::new(
                "b",
                vec![Column::new("a_id", ColumnType::Int)],
            ))
            .unwrap();
        cat.add_index("a_id_idx", a, ColumnId(0), IndexKind::BTree, true)
            .unwrap();
        let col = |ndv: f64, max: f64| ColumnStats {
            meta: ColumnStatsMeta {
                ndv,
                min: 0.0,
                max,
                null_frac: 0.0,
            },
            histogram: Histogram::build((0..200).map(|i| max * (i as f64) / 199.0).collect(), 20),
            mcvs: vec![],
        };
        let stats = StatsCatalog::new(vec![
            TableStats {
                row_count: 100_000.0,
                row_width: 16.0,
                columns: vec![col(100_000.0, 99_999.0), col(100.0, 99.0)],
            },
            TableStats {
                row_count: 1_000.0,
                row_width: 8.0,
                columns: vec![col(1_000.0, 99_999.0)],
            },
        ]);
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: a,
                    alias: "a".into(),
                },
                Relation {
                    table: b,
                    alias: "b".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(0)),
            }],
            vec![Selection {
                column: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                value: Lit::Int(42),
            }],
            vec![],
            vec![],
        );
        (cat, stats, graph)
    }

    #[test]
    fn selective_predicate_picks_index_scan() {
        let (cat, stats, graph) = setup();
        let params = CostParams::default();
        let model = CostModel::new(&params, &stats);
        let cards = EstimatedCardinality::new(&stats);
        let (node, _) = best_access_path(&graph, RelId(0), &cat, &model, &cards);
        assert!(
            matches!(
                node,
                PlanNode::Scan {
                    path: AccessPath::IndexScan { .. },
                    ..
                }
            ),
            "expected index scan, got {node:?}"
        );
    }

    #[test]
    fn relation_without_index_uses_seq_scan() {
        let (cat, stats, graph) = setup();
        let params = CostParams::default();
        let model = CostModel::new(&params, &stats);
        let cards = EstimatedCardinality::new(&stats);
        let (node, _) = best_access_path(&graph, RelId(1), &cat, &model, &cards);
        assert!(matches!(
            node,
            PlanNode::Scan {
                path: AccessPath::SeqScan,
                ..
            }
        ));
    }

    #[test]
    fn best_join_picks_an_equality_algorithm_on_large_inputs() {
        let (cat, stats, graph) = setup();
        // Drop the pk selection: both inputs stay large, so the quadratic
        // nested loop must lose to hash/merge.
        let graph = QueryGraph::new(
            graph.relations().to_vec(),
            graph.joins().to_vec(),
            vec![],
            vec![],
            vec![],
        );
        let params = CostParams::default();
        let model = CostModel::new(&params, &stats);
        let cards = EstimatedCardinality::new(&stats);
        let (l, _) = best_access_path(&graph, RelId(0), &cat, &model, &cards);
        let (r, _) = best_access_path(&graph, RelId(1), &cat, &model, &cards);
        let (join, cost) = best_join(&graph, &l, &r, &model, &cards);
        match &join {
            PlanNode::Join { algo, conds, .. } => {
                assert_ne!(*algo, JoinAlgo::NestedLoop);
                assert_eq!(conds, &vec![0]);
            }
            other => panic!("expected join, got {other:?}"),
        }
        assert!(cost.total > 0.0);
    }

    #[test]
    fn tiny_outer_prefers_nested_loop() {
        // With the pk equality selection, relation a shrinks to ~1 row and
        // the nested loop becomes the cheapest strategy — the classic
        // reason real optimizers keep NLJ around.
        let (cat, stats, graph) = setup();
        let params = CostParams::default();
        let model = CostModel::new(&params, &stats);
        let cards = EstimatedCardinality::new(&stats);
        let (l, _) = best_access_path(&graph, RelId(0), &cat, &model, &cards);
        let (r, _) = best_access_path(&graph, RelId(1), &cat, &model, &cards);
        let (join, _) = best_join(&graph, &l, &r, &model, &cards);
        assert!(matches!(
            join,
            PlanNode::Join {
                algo: JoinAlgo::NestedLoop,
                ..
            }
        ));
    }

    #[test]
    fn aggregate_added_only_when_needed() {
        let (cat, stats, graph) = setup();
        let params = CostParams::default();
        let model = CostModel::new(&params, &stats);
        let cards = EstimatedCardinality::new(&stats);
        let (l, _) = best_access_path(&graph, RelId(0), &cat, &model, &cards);
        let unchanged = add_aggregate_if_needed(&graph, l.clone(), &model, &cards);
        assert_eq!(unchanged, l);

        let agg_graph = QueryGraph::new(
            graph.relations().to_vec(),
            graph.joins().to_vec(),
            graph.selections().to_vec(),
            vec![hfqo_query::AggExpr {
                func: hfqo_sql::AggFunc::Count,
                column: None,
            }],
            vec![],
        );
        let wrapped = add_aggregate_if_needed(&agg_graph, l, &model, &cards);
        assert!(matches!(wrapped, PlanNode::Aggregate { .. }));
    }
}
