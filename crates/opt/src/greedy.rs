//! Greedy bottom-up join ordering (the beyond-threshold fallback).

use crate::physical::{best_access_path, best_join};
use hfqo_catalog::Catalog;
use hfqo_cost::CostModel;
use hfqo_query::{PlanNode, QueryGraph};
use hfqo_stats::CardinalitySource;

/// Greedy bottom-up planning: start from the best access path per
/// relation, then repeatedly merge the pair of subplans whose join has the
/// lowest cost, preferring connected pairs over cross products.
///
/// This is the polynomial-time stand-in for PostgreSQL's GEQO and mirrors
/// the "greedy bottom-up algorithm" the paper's §3 attributes to
/// PostgreSQL. It examines O(n²) pairs per step.
pub fn greedy_plan<C: CardinalitySource>(
    graph: &QueryGraph,
    catalog: &Catalog,
    model: &CostModel<'_>,
    cards: &C,
) -> PlanNode {
    let mut parts: Vec<PlanNode> = graph
        .all_rels()
        .iter()
        .map(|rel| best_access_path(graph, rel, catalog, model, cards).0)
        .collect();
    while parts.len() > 1 {
        let mut best: Option<(usize, usize, PlanNode, f64, bool)> = None;
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                let connected = graph.sets_connected(parts[i].rel_set(), parts[j].rel_set());
                // Cross products are considered only if no connected pair
                // exists at all (disconnected graphs).
                if let Some((_, _, _, _, best_conn)) = &best {
                    if *best_conn && !connected {
                        continue;
                    }
                }
                let (cand, cost) = best_join(graph, &parts[i], &parts[j], model, cards);
                let better = match &best {
                    None => true,
                    Some((_, _, _, best_cost, best_conn)) => {
                        // A connected pair always beats a cross product;
                        // otherwise compare cost.
                        (connected && !best_conn)
                            || (connected == *best_conn && cost.total < *best_cost)
                    }
                };
                if better {
                    best = Some((i, j, cand, cost.total, connected));
                }
            }
        }
        let (i, j, joined, _, _) = best.expect("at least one pair exists");
        // Remove j first (j > i) so i stays valid.
        parts.remove(j);
        parts.remove(i);
        parts.push(joined);
    }
    parts.pop().expect("one plan remains")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::dp_plan;
    use crate::random::random_plan;
    use crate::test_support::{chain_query, star_query, TestDb};
    use hfqo_cost::CostParams;
    use hfqo_query::PhysicalPlan;
    use hfqo_stats::EstimatedCardinality;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_plans_are_valid() {
        for n in 1..=8 {
            let db = TestDb::chain(n, 500);
            let graph = chain_query(&db, n);
            let params = CostParams::default();
            let model = CostModel::new(&params, &db.stats);
            let cards = EstimatedCardinality::new(&db.stats);
            let plan = greedy_plan(&graph, db.db.catalog(), &model, &cards);
            PhysicalPlan::new(plan).validate(&graph).unwrap();
        }
    }

    #[test]
    fn greedy_close_to_dp_on_small_queries() {
        let db = TestDb::chain(5, 1000);
        let graph = chain_query(&db, 5);
        let params = CostParams::default();
        let model = CostModel::new(&params, &db.stats);
        let cards = EstimatedCardinality::new(&db.stats);
        let g = greedy_plan(&graph, db.db.catalog(), &model, &cards);
        let d = dp_plan(&graph, db.db.catalog(), &model, &cards);
        let gc = model.plan_cost(&graph, &PhysicalPlan::new(g), &cards).total;
        let dc = model.plan_cost(&graph, &PhysicalPlan::new(d), &cards).total;
        assert!(
            dc <= gc * 1.0001,
            "dp {dc} should never lose to greedy {gc}"
        );
        // Greedy should stay within an order of magnitude on easy chains.
        assert!(gc <= dc * 10.0, "greedy {gc} too far from dp {dc}");
    }

    #[test]
    fn greedy_beats_random_on_stars() {
        let db = TestDb::star(6, 2000);
        let graph = star_query(&db, 6);
        let params = CostParams::default();
        let model = CostModel::new(&params, &db.stats);
        let cards = EstimatedCardinality::new(&db.stats);
        let g = greedy_plan(&graph, db.db.catalog(), &model, &cards);
        let gc = model.plan_cost(&graph, &PhysicalPlan::new(g), &cards).total;
        let mut rng = StdRng::seed_from_u64(11);
        let mut random_better = 0;
        for _ in 0..30 {
            let r = random_plan(&graph, db.db.catalog(), &mut rng);
            let rc = model.plan_cost(&graph, &r, &cards).total;
            if rc < gc {
                random_better += 1;
            }
        }
        // Random may occasionally tie greedy, but not usually.
        assert!(
            random_better <= 3,
            "random beat greedy {random_better}/30 times"
        );
    }
}
