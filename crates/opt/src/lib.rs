//! # hfqo-opt
//!
//! The "traditional query optimizer" of the paper: the expert that
//! learning-from-demonstration imitates, the baseline every figure compares
//! against, and the provider of the cost model ReJOIN uses as its reward.
//!
//! Architecture mirrors PostgreSQL's planner:
//!
//! * cardinality estimation from histograms (`hfqo-stats`),
//! * a cost model with per-operator formulas (`hfqo-cost`),
//! * **exhaustive bottom-up dynamic programming** ([`dp`]) over connected
//!   subgraphs for small queries (PostgreSQL: `geqo_threshold = 12`),
//! * a **greedy bottom-up** fallback ([`greedy`]) beyond the threshold
//!   (standing in for GEQO; the paper's §3 notes PostgreSQL's greedy
//!   bottom-up behaviour),
//! * access-path and physical-operator selection ([`physical`]),
//! * a **random planner** ([`random`]) used as the floor baseline in
//!   the §4 experiments and **expert traces** ([`trace`]) consumed by
//!   learning-from-demonstration (§5.1),
//! * plus the **unified [`Planner`] trait** ([`planner`]) every strategy
//!   — traditional, pure greedy, random, and the learned ReJOIN policy —
//!   implements, so the serving layer and the experiment harness swap
//!   strategies behind one interface.

pub mod dp;
pub mod greedy;
pub mod optimizer;
pub mod physical;
pub mod planner;
pub mod random;
pub mod trace;

#[doc(hidden)]
pub mod test_support;

pub use optimizer::{OptError, PlannedQuery, PlannerMethod, TraditionalOptimizer};
pub use planner::{GreedyPlanner, Planner, PlannerContext, RandomPlanner, TraditionalPlanner};
pub use random::random_plan;
pub use trace::{expert_actions, ExpertEpisode};
