//! The optimizer facade.

use crate::dp::dp_plan;
use crate::greedy::greedy_plan;
use crate::physical::add_aggregate_if_needed;
use hfqo_catalog::Catalog;
use hfqo_cost::{CostModel, CostParams};
use hfqo_query::{PhysicalPlan, QueryGraph};
use hfqo_stats::{CardinalitySource, EstimatedCardinality, StatsCatalog};
use std::fmt;
use std::time::{Duration, Instant};

/// Which search strategy produced a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlannerMethod {
    /// Exhaustive dynamic programming.
    DynamicProgramming,
    /// Greedy bottom-up (beyond the DP threshold, or the pure-greedy
    /// planner).
    Greedy,
    /// Uniformly random valid plan (the floor baseline).
    Random,
    /// A frozen learned policy (greedy-argmax ReJOIN inference).
    Learned,
}

impl PlannerMethod {
    /// Short lower-case label, for traces and experiment reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::DynamicProgramming => "dp",
            Self::Greedy => "greedy",
            Self::Random => "random",
            Self::Learned => "learned",
        }
    }
}

impl fmt::Display for PlannerMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Optimizer errors.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The query has no relations.
    EmptyQuery,
    /// The planner cannot handle this query (e.g. a learned policy
    /// sized for fewer relations than the query has).
    Unsupported(String),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyQuery => write!(f, "cannot plan a query with no relations"),
            Self::Unsupported(why) => write!(f, "planner cannot handle this query: {why}"),
        }
    }
}

impl std::error::Error for OptError {}

/// A planned query: the plan plus planning metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedQuery {
    /// The chosen plan (aggregate root included when the query needs it).
    pub plan: PhysicalPlan,
    /// Estimated cost of the plan.
    pub cost: f64,
    /// Wall-clock planning time.
    pub planning_time: Duration,
    /// Which strategy ran.
    pub method: PlannerMethod,
}

/// The traditional cost-based optimizer (the paper's "expert").
#[derive(Debug, Clone)]
pub struct TraditionalOptimizer<'a> {
    catalog: &'a Catalog,
    stats: &'a StatsCatalog,
    params: CostParams,
    /// Relation count at which planning switches from DP to greedy
    /// (PostgreSQL's `geqo_threshold` defaults to 12; DP on our bushy
    /// search space gets slow a little earlier, hence 10).
    pub dp_threshold: usize,
}

impl<'a> TraditionalOptimizer<'a> {
    /// Creates an optimizer with PostgreSQL-like cost parameters.
    pub fn new(catalog: &'a Catalog, stats: &'a StatsCatalog) -> Self {
        Self {
            catalog,
            stats,
            params: CostParams::postgres_like(),
            dp_threshold: 10,
        }
    }

    /// Overrides the cost parameters (builder style).
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the DP threshold (builder style).
    pub fn with_dp_threshold(mut self, threshold: usize) -> Self {
        self.dp_threshold = threshold;
        self
    }

    /// The cost model this optimizer prices plans with.
    pub fn cost_model(&self) -> CostModel<'_> {
        CostModel::new(&self.params, self.stats)
    }

    /// The estimated-cardinality source.
    pub fn estimator(&self) -> EstimatedCardinality<'a> {
        EstimatedCardinality::new(self.stats)
    }

    /// Plans a query: DP below the threshold, greedy at or above it, then
    /// operator selection for the aggregate root.
    pub fn plan(&self, graph: &QueryGraph) -> Result<PlannedQuery, OptError> {
        if graph.relation_count() == 0 {
            return Err(OptError::EmptyQuery);
        }
        let start = Instant::now();
        let model = self.cost_model();
        let cards = self.estimator();
        let (join_root, method) = if graph.relation_count() < self.dp_threshold {
            (
                dp_plan(graph, self.catalog, &model, &cards),
                PlannerMethod::DynamicProgramming,
            )
        } else {
            (
                greedy_plan(graph, self.catalog, &model, &cards),
                PlannerMethod::Greedy,
            )
        };
        let root = add_aggregate_if_needed(graph, join_root, &model, &cards);
        let plan = PhysicalPlan::new(root);
        let cost = model.plan_cost(graph, &plan, &cards).total;
        Ok(PlannedQuery {
            plan,
            cost,
            planning_time: start.elapsed(),
            method,
        })
    }

    /// Prices an arbitrary plan with this optimizer's cost model and
    /// estimated cardinalities — the `M(t)` of the paper, used as the RL
    /// reward signal.
    pub fn cost_of(&self, graph: &QueryGraph, plan: &PhysicalPlan) -> f64 {
        self.cost_model()
            .plan_cost(graph, plan, &self.estimator())
            .total
    }

    /// Prices a plan under a caller-provided cardinality source (e.g. the
    /// true-cardinality oracle).
    pub fn cost_with<C: CardinalitySource>(
        &self,
        graph: &QueryGraph,
        plan: &PhysicalPlan,
        cards: &C,
    ) -> f64 {
        self.cost_model().plan_cost(graph, plan, cards).total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_query, TestDb};

    #[test]
    fn plans_small_queries_with_dp() {
        let db = TestDb::chain(4, 500);
        let graph = chain_query(&db, 4);
        let opt = TraditionalOptimizer::new(db.db.catalog(), &db.stats);
        let planned = opt.plan(&graph).unwrap();
        assert_eq!(planned.method, PlannerMethod::DynamicProgramming);
        planned.plan.validate(&graph).unwrap();
        assert!(planned.cost > 0.0);
    }

    #[test]
    fn large_queries_fall_back_to_greedy() {
        let db = TestDb::chain(6, 200);
        let graph = chain_query(&db, 6);
        let opt = TraditionalOptimizer::new(db.db.catalog(), &db.stats).with_dp_threshold(5);
        let planned = opt.plan(&graph).unwrap();
        assert_eq!(planned.method, PlannerMethod::Greedy);
        planned.plan.validate(&graph).unwrap();
    }

    #[test]
    fn cost_of_matches_plan_cost() {
        let db = TestDb::chain(3, 300);
        let graph = chain_query(&db, 3);
        let opt = TraditionalOptimizer::new(db.db.catalog(), &db.stats);
        let planned = opt.plan(&graph).unwrap();
        let re_cost = opt.cost_of(&graph, &planned.plan);
        assert!((re_cost - planned.cost).abs() < 1e-9);
    }

    #[test]
    fn empty_query_rejected() {
        let db = TestDb::chain(2, 100);
        let graph = hfqo_query::QueryGraph::new(vec![], vec![], vec![], vec![], vec![]);
        let opt = TraditionalOptimizer::new(db.db.catalog(), &db.stats);
        assert_eq!(opt.plan(&graph), Err(OptError::EmptyQuery));
    }

    #[test]
    fn planning_time_grows_with_relations() {
        // Not a strict benchmark — just sanity that DP planning time is
        // recorded and nonzero.
        let db = TestDb::chain(7, 100);
        let graph = chain_query(&db, 7);
        let opt = TraditionalOptimizer::new(db.db.catalog(), &db.stats);
        let planned = opt.plan(&graph).unwrap();
        assert!(planned.planning_time.as_nanos() > 0);
    }
}
