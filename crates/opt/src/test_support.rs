//! Shared fixtures for the optimizer's unit tests: small chain/star
//! databases with data, indexes, and statistics.

use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, IndexKind};
use hfqo_query::{BoundColumn, JoinEdge, Lit, QueryGraph, RelId, Relation, Selection};
use hfqo_sql::CompareOp;
use hfqo_stats::{build_database_stats, StatsCatalog};
use hfqo_storage::{ColumnGen, Database, Distribution, TableGen};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generated database plus its statistics.
pub struct TestDb {
    /// The database.
    pub db: Database,
    /// Statistics over its tables.
    pub stats: StatsCatalog,
}

impl TestDb {
    /// `n` tables in a chain: `t0(id, val)`, `t_i(id, fk→t_{i-1}, val)`.
    /// Every table has `rows` rows, a B-tree on `id`, and zipf-skewed
    /// `val`.
    pub fn chain(n: usize, rows: usize) -> Self {
        let mut cat = Catalog::new();
        for i in 0..n {
            let mut cols = vec![Column::new("id", ColumnType::Int)];
            if i > 0 {
                cols.push(Column::new("fk", ColumnType::Int));
            }
            cols.push(Column::new("val", ColumnType::Int));
            let t = cat
                .add_table(hfqo_catalog::TableSchema::new(format!("t{i}"), cols))
                .expect("fresh name");
            cat.add_index(format!("t{i}_id"), t, ColumnId(0), IndexKind::BTree, true)
                .expect("fresh index");
        }
        let mut db = Database::new(cat);
        let mut rng = StdRng::seed_from_u64(7 + n as u64);
        for i in 0..n {
            let tid = hfqo_catalog::TableId(i as u32);
            let mut columns = vec![ColumnGen::new(Distribution::Sequential)];
            if i > 0 {
                columns.push(ColumnGen::new(Distribution::FkZipf {
                    target_rows: rows as u64,
                    s: 0.8,
                }));
            }
            columns.push(ColumnGen::new(Distribution::Zipf { n: 100, s: 1.0 }));
            let schema = db.catalog().table(tid).expect("exists").clone();
            let table = TableGen { columns, rows }
                .generate(&schema, &mut rng)
                .expect("generator matches schema");
            db.load_table(tid, table).expect("schema matches");
        }
        db.build_indexes().expect("indexes valid");
        let stats = build_database_stats(&db);
        Self { db, stats }
    }

    /// A star: `t0` is the fact table with `n - 1` FK columns; tables
    /// `t1..t_{n-1}` are dimensions with `rows / 10` rows each.
    pub fn star(n: usize, rows: usize) -> Self {
        assert!(n >= 2);
        let dim_rows = (rows / 10).max(10);
        let mut cat = Catalog::new();
        let mut fact_cols = vec![Column::new("id", ColumnType::Int)];
        for d in 1..n {
            fact_cols.push(Column::new(format!("fk{d}"), ColumnType::Int));
        }
        fact_cols.push(Column::new("val", ColumnType::Int));
        let fact = cat
            .add_table(hfqo_catalog::TableSchema::new("t0", fact_cols))
            .expect("fresh name");
        cat.add_index("t0_id", fact, ColumnId(0), IndexKind::BTree, true)
            .expect("fresh index");
        for d in 1..n {
            let t = cat
                .add_table(hfqo_catalog::TableSchema::new(
                    format!("t{d}"),
                    vec![
                        Column::new("id", ColumnType::Int),
                        Column::new("val", ColumnType::Int),
                    ],
                ))
                .expect("fresh name");
            cat.add_index(format!("t{d}_id"), t, ColumnId(0), IndexKind::BTree, true)
                .expect("fresh index");
        }
        let mut db = Database::new(cat);
        let mut rng = StdRng::seed_from_u64(99 + n as u64);
        // Fact table.
        let mut fact_gens = vec![ColumnGen::new(Distribution::Sequential)];
        for _ in 1..n {
            fact_gens.push(ColumnGen::new(Distribution::FkZipf {
                target_rows: dim_rows as u64,
                s: 0.7,
            }));
        }
        fact_gens.push(ColumnGen::new(Distribution::Zipf { n: 50, s: 1.1 }));
        let schema = db.catalog().table(fact).expect("exists").clone();
        let table = TableGen {
            columns: fact_gens,
            rows,
        }
        .generate(&schema, &mut rng)
        .expect("generator matches schema");
        db.load_table(fact, table).expect("schema matches");
        // Dimensions.
        for d in 1..n {
            let tid = hfqo_catalog::TableId(d as u32);
            let schema = db.catalog().table(tid).expect("exists").clone();
            let table = TableGen {
                columns: vec![
                    ColumnGen::new(Distribution::Sequential),
                    ColumnGen::new(Distribution::Zipf { n: 20, s: 1.0 }),
                ],
                rows: dim_rows,
            }
            .generate(&schema, &mut rng)
            .expect("generator matches schema");
            db.load_table(tid, table).expect("schema matches");
        }
        db.build_indexes().expect("indexes valid");
        let stats = build_database_stats(&db);
        Self { db, stats }
    }
}

/// A chain query over the first `n` tables of a [`TestDb::chain`]
/// database: `t0 ⋈ t1 ⋈ … ⋈ t_{n-1}` with one selection on `t0.val`.
pub fn chain_query(db: &TestDb, n: usize) -> QueryGraph {
    let _ = db;
    let relations = (0..n)
        .map(|i| Relation {
            table: hfqo_catalog::TableId(i as u32),
            alias: format!("t{i}"),
        })
        .collect();
    let joins = (1..n)
        .map(|i| JoinEdge {
            left: BoundColumn::new(RelId(i as u32 - 1), ColumnId(0)),
            op: CompareOp::Eq,
            right: BoundColumn::new(RelId(i as u32), ColumnId(1)),
        })
        .collect();
    let val_col = |i: usize| if i == 0 { 1 } else { 2 };
    let selections = vec![Selection {
        column: BoundColumn::new(RelId(0), ColumnId(val_col(0))),
        op: CompareOp::Lt,
        value: Lit::Int(20),
    }];
    QueryGraph::new(relations, joins, selections, vec![], vec![])
}

/// `q` with a single `COUNT(*)` output appended (relations, joins,
/// selections, and grouping unchanged) — the aggregate shape most
/// executor and environment tests need.
pub fn with_count(q: QueryGraph) -> QueryGraph {
    let label = q.label.clone();
    let g = QueryGraph::new(
        q.relations().to_vec(),
        q.joins().to_vec(),
        q.selections().to_vec(),
        vec![hfqo_query::AggExpr {
            func: hfqo_sql::AggFunc::Count,
            column: None,
        }],
        q.group_by().to_vec(),
    );
    match label {
        Some(l) => g.with_label(l),
        None => g,
    }
}

/// A star query over a [`TestDb::star`] database: the fact table joined
/// with every dimension, with a selection on one dimension.
pub fn star_query(db: &TestDb, n: usize) -> QueryGraph {
    let _ = db;
    let relations = (0..n)
        .map(|i| Relation {
            table: hfqo_catalog::TableId(i as u32),
            alias: format!("t{i}"),
        })
        .collect();
    let joins = (1..n)
        .map(|d| JoinEdge {
            left: BoundColumn::new(RelId(0), ColumnId(d as u32)),
            op: CompareOp::Eq,
            right: BoundColumn::new(RelId(d as u32), ColumnId(0)),
        })
        .collect();
    let selections = vec![Selection {
        column: BoundColumn::new(RelId(1), ColumnId(1)),
        op: CompareOp::Lt,
        value: Lit::Int(5),
    }];
    QueryGraph::new(relations, joins, selections, vec![], vec![])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_fixture_is_consistent() {
        let t = TestDb::chain(3, 500);
        assert_eq!(t.db.catalog().table_count(), 3);
        assert_eq!(
            t.db.table(hfqo_catalog::TableId(0)).unwrap().row_count(),
            500
        );
        let q = chain_query(&t, 3);
        assert_eq!(q.relation_count(), 3);
        assert_eq!(q.joins().len(), 2);
        assert!(q.is_connected(q.all_rels()));
    }

    #[test]
    fn star_fixture_is_consistent() {
        let t = TestDb::star(4, 1000);
        assert_eq!(t.db.catalog().table_count(), 4);
        let q = star_query(&t, 4);
        assert_eq!(q.joins().len(), 3);
        assert!(q.is_connected(q.all_rels()));
    }
}
