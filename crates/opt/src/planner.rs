//! The unified planning interface.
//!
//! Every planning strategy in this project — the traditional DP/greedy
//! expert, pure greedy, the random floor baseline, and the learned
//! ReJOIN policy (`hfqo_rejoin::LearnedPlanner`) — implements one
//! [`Planner`] trait, so the serving layer, the experiment harness, and
//! the benchmarks can swap strategies behind a `&dyn Planner` without
//! bespoke call sites.
//!
//! Planners are *strategy objects*: they hold only their own
//! configuration (thresholds, seeds, frozen policy weights) and receive
//! the world — catalog, statistics, cost parameters — per call through a
//! [`PlannerContext`]. That keeps every planner `Send + Sync` without
//! lifetime ties to the database, which is what lets a serving session
//! own its statistics and rebuild them without invalidating planner
//! borrows.

use crate::optimizer::{OptError, PlannedQuery, PlannerMethod, TraditionalOptimizer};
use crate::random::random_plan;
use hfqo_catalog::Catalog;
use hfqo_cost::{CostModel, CostParams};
use hfqo_query::QueryGraph;
use hfqo_stats::{EstimatedCardinality, StatsCatalog};
use hfqo_sync::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The read-only world a planner plans against, handed in per call.
#[derive(Clone)]
pub struct PlannerContext<'a> {
    /// The table catalog.
    pub catalog: &'a Catalog,
    /// Table statistics (cardinality estimation).
    pub stats: &'a StatsCatalog,
    /// Cost-model parameters.
    pub params: CostParams,
}

impl<'a> PlannerContext<'a> {
    /// A context with PostgreSQL-like cost parameters.
    pub fn new(catalog: &'a Catalog, stats: &'a StatsCatalog) -> Self {
        Self {
            catalog,
            stats,
            params: CostParams::postgres_like(),
        }
    }

    /// Overrides the cost parameters (builder style).
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// A cost model over this context.
    pub fn cost_model(&self) -> CostModel<'_> {
        CostModel::new(&self.params, self.stats)
    }

    /// The estimated-cardinality source.
    pub fn estimator(&self) -> EstimatedCardinality<'a> {
        EstimatedCardinality::new(self.stats)
    }
}

/// A query planner: turns a bound [`QueryGraph`] into a [`PlannedQuery`].
///
/// Implementations must be `Send + Sync` — the serving layer shares one
/// planner across its worker threads.
///
/// Strategies swap behind `&dyn Planner` with no bespoke call sites:
///
/// ```
/// use hfqo_opt::test_support::{chain_query, TestDb};
/// use hfqo_opt::{GreedyPlanner, Planner, PlannerContext, RandomPlanner, TraditionalPlanner};
///
/// let fixture = TestDb::chain(4, 200);
/// let graph = chain_query(&fixture, 4);
/// let ctx = PlannerContext::new(fixture.db.catalog(), &fixture.stats);
/// let strategies: [&dyn Planner; 3] = [
///     &TraditionalPlanner::new(),
///     &GreedyPlanner,
///     &RandomPlanner::new(42),
/// ];
/// for planner in strategies {
///     let planned = planner.plan(&ctx, &graph)?;
///     planned.plan.validate(&graph).expect("every strategy plans validly");
/// }
/// # Ok::<(), hfqo_opt::OptError>(())
/// ```
pub trait Planner: Send + Sync {
    /// Short strategy name, for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Plans `graph` against the given world.
    fn plan(&self, ctx: &PlannerContext<'_>, graph: &QueryGraph) -> Result<PlannedQuery, OptError>;
}

/// The traditional cost-based strategy: exhaustive DP below a threshold,
/// greedy bottom-up at or above it — [`TraditionalOptimizer`] behind the
/// [`Planner`] trait.
#[derive(Debug, Clone, Copy)]
pub struct TraditionalPlanner {
    /// Relation count at which planning switches from DP to greedy.
    pub dp_threshold: usize,
}

impl TraditionalPlanner {
    /// The default DP/greedy switch (matches [`TraditionalOptimizer`]).
    pub fn new() -> Self {
        Self { dp_threshold: 10 }
    }

    /// Overrides the DP threshold (builder style).
    pub fn with_dp_threshold(mut self, threshold: usize) -> Self {
        self.dp_threshold = threshold;
        self
    }
}

impl Default for TraditionalPlanner {
    fn default() -> Self {
        Self::new()
    }
}

impl Planner for TraditionalPlanner {
    fn name(&self) -> &'static str {
        "traditional"
    }

    fn plan(&self, ctx: &PlannerContext<'_>, graph: &QueryGraph) -> Result<PlannedQuery, OptError> {
        TraditionalOptimizer::new(ctx.catalog, ctx.stats)
            .with_params(ctx.params.clone())
            .with_dp_threshold(self.dp_threshold)
            .plan(graph)
    }
}

/// Pure greedy bottom-up planning at every query size (the traditional
/// strategy with the DP stage disabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyPlanner;

impl Planner for GreedyPlanner {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn plan(&self, ctx: &PlannerContext<'_>, graph: &QueryGraph) -> Result<PlannedQuery, OptError> {
        // Threshold 0 routes every query through the greedy stage.
        TraditionalOptimizer::new(ctx.catalog, ctx.stats)
            .with_params(ctx.params.clone())
            .with_dp_threshold(0)
            .plan(graph)
    }
}

/// The random floor baseline behind the [`Planner`] trait: every call
/// draws a fresh uniformly random valid plan from a deterministic
/// per-planner RNG stream.
///
/// The RNG sits behind a mutex so the planner stays `Sync`; concurrent
/// callers serialise only for the (cheap) draw, and the stream — hence
/// the plan sequence — is deterministic per seed, though its
/// interleaving across threads is not.
#[derive(Debug)]
pub struct RandomPlanner {
    rng: Mutex<StdRng>,
}

impl RandomPlanner {
    /// A random planner with its own seeded RNG stream.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Mutex::new("opt.random_planner.rng", StdRng::seed_from_u64(seed)),
        }
    }
}

impl Planner for RandomPlanner {
    fn name(&self) -> &'static str {
        "random"
    }

    fn plan(&self, ctx: &PlannerContext<'_>, graph: &QueryGraph) -> Result<PlannedQuery, OptError> {
        if graph.relation_count() == 0 {
            return Err(OptError::EmptyQuery);
        }
        let start = Instant::now();
        let plan = {
            let mut rng = self.rng.lock();
            random_plan(graph, ctx.catalog, &mut rng)
        };
        let cost = ctx
            .cost_model()
            .plan_cost(graph, &plan, &ctx.estimator())
            .total;
        Ok(PlannedQuery {
            plan,
            cost,
            planning_time: start.elapsed(),
            method: PlannerMethod::Random,
        })
    }
}

// The serving layer shares planners across worker threads; every
// strategy object must stay thread-safe (the trait requires it, the
// assertions pin the concrete types).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TraditionalPlanner>();
    assert_send_sync::<GreedyPlanner>();
    assert_send_sync::<RandomPlanner>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_query, TestDb};

    fn fixture() -> (TestDb, QueryGraph) {
        let db = TestDb::chain(4, 300);
        let graph = chain_query(&db, 4);
        (db, graph)
    }

    #[test]
    fn traditional_planner_matches_the_optimizer_facade() {
        let (db, graph) = fixture();
        let ctx = PlannerContext::new(db.db.catalog(), &db.stats);
        let via_trait = TraditionalPlanner::new().plan(&ctx, &graph).unwrap();
        let direct = TraditionalOptimizer::new(db.db.catalog(), &db.stats)
            .plan(&graph)
            .unwrap();
        assert_eq!(via_trait.plan, direct.plan);
        assert_eq!(via_trait.cost, direct.cost);
        assert_eq!(via_trait.method, PlannerMethod::DynamicProgramming);
    }

    /// `PlannerMethod` attribution: the DP/greedy switch reports which
    /// stage actually ran.
    #[test]
    fn traditional_planner_attributes_greedy_beyond_threshold() {
        let (db, graph) = fixture();
        let ctx = PlannerContext::new(db.db.catalog(), &db.stats);
        let planned = TraditionalPlanner::new()
            .with_dp_threshold(3)
            .plan(&ctx, &graph)
            .unwrap();
        assert_eq!(planned.method, PlannerMethod::Greedy);
        planned.plan.validate(&graph).unwrap();
    }

    /// `PlannerMethod` attribution: pure greedy is `Greedy` at every
    /// size, even ones DP would normally take.
    #[test]
    fn greedy_planner_attributes_greedy_method() {
        let (db, graph) = fixture();
        let ctx = PlannerContext::new(db.db.catalog(), &db.stats);
        let planned = GreedyPlanner.plan(&ctx, &graph).unwrap();
        assert_eq!(planned.method, PlannerMethod::Greedy);
        planned.plan.validate(&graph).unwrap();
        assert!(planned.cost > 0.0);
    }

    /// `PlannerMethod` attribution: random plans are tagged `Random`.
    #[test]
    fn random_planner_attributes_random_method() {
        let (db, graph) = fixture();
        let ctx = PlannerContext::new(db.db.catalog(), &db.stats);
        let planner = RandomPlanner::new(3);
        let planned = planner.plan(&ctx, &graph).unwrap();
        assert_eq!(planned.method, PlannerMethod::Random);
        planned.plan.validate(&graph).unwrap();
        assert!(planned.cost > 0.0);
    }

    #[test]
    fn random_planner_stream_is_deterministic_per_seed_and_varies() {
        let (db, graph) = fixture();
        let ctx = PlannerContext::new(db.db.catalog(), &db.stats);
        let a: Vec<_> = {
            let p = RandomPlanner::new(9);
            (0..5).map(|_| p.plan(&ctx, &graph).unwrap().plan).collect()
        };
        let b: Vec<_> = {
            let p = RandomPlanner::new(9);
            (0..5).map(|_| p.plan(&ctx, &graph).unwrap().plan).collect()
        };
        assert_eq!(a, b, "same seed, same plan sequence");
        let distinct = a
            .iter()
            .map(|p| format!("{p:?}"))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 1, "random draws should vary across calls");
    }

    #[test]
    fn planners_reject_empty_queries_as_trait_objects() {
        let (db, _) = fixture();
        let ctx = PlannerContext::new(db.db.catalog(), &db.stats);
        let empty = QueryGraph::new(vec![], vec![], vec![], vec![], vec![]);
        let planners: Vec<Box<dyn Planner>> = vec![
            Box::new(TraditionalPlanner::new()),
            Box::new(GreedyPlanner),
            Box::new(RandomPlanner::new(0)),
        ];
        for planner in &planners {
            assert_eq!(
                planner.plan(&ctx, &empty),
                Err(OptError::EmptyQuery),
                "{}",
                planner.name()
            );
        }
    }

    #[test]
    fn method_labels_cover_every_variant() {
        assert_eq!(PlannerMethod::DynamicProgramming.label(), "dp");
        assert_eq!(PlannerMethod::Greedy.label(), "greedy");
        assert_eq!(PlannerMethod::Random.label(), "random");
        assert_eq!(PlannerMethod::Learned.to_string(), "learned");
    }
}
