//! Selinger-style bottom-up dynamic programming (DPsize, bushy).

use crate::physical::{best_access_path, best_join};
use hfqo_catalog::Catalog;
use hfqo_cost::CostModel;
use hfqo_query::{PlanNode, QueryGraph, RelSet};
use hfqo_stats::CardinalitySource;
use std::collections::HashMap;

/// Finds the cheapest (bushy) join plan by dynamic programming over
/// connected subgraphs, in the style of System R / PostgreSQL's standard
/// join search.
///
/// Cross products are only considered when the query graph is
/// disconnected (the leftover components are combined at the end), which
/// matches PostgreSQL's behaviour and keeps the table size manageable.
///
/// Complexity is exponential in the number of relations; callers switch to
/// [`greedy`](crate::greedy) beyond a threshold exactly like PostgreSQL
/// switches to GEQO.
pub fn dp_plan<C: CardinalitySource>(
    graph: &QueryGraph,
    catalog: &Catalog,
    model: &CostModel<'_>,
    cards: &C,
) -> PlanNode {
    let n = graph.relation_count();
    debug_assert!(n >= 1);
    let mut table: HashMap<RelSet, (PlanNode, f64)> = HashMap::new();
    // Size-1: best access paths.
    let mut by_size: Vec<Vec<RelSet>> = vec![Vec::new(); n + 1];
    for rel in graph.all_rels().iter() {
        let set = RelSet::single(rel);
        let (node, cost) = best_access_path(graph, rel, catalog, model, cards);
        table.insert(set, (node, cost.total));
        by_size[1].push(set);
    }
    // Sizes 2..=n: combine connected disjoint pairs.
    for size in 2..=n {
        let mut found: Vec<RelSet> = Vec::new();
        for l_size in 1..=(size / 2) {
            let r_size = size - l_size;
            for li in 0..by_size[l_size].len() {
                let lset = by_size[l_size][li];
                #[allow(clippy::needless_range_loop)] // r_size varies per iteration
                for ri in 0..by_size[r_size].len() {
                    let rset = by_size[r_size][ri];
                    if lset == rset || !lset.is_disjoint(rset) {
                        continue;
                    }
                    if !graph.sets_connected(lset, rset) {
                        continue;
                    }
                    let union = lset.union(rset);
                    let (lplan, _) = &table[&lset];
                    let (rplan, _) = &table[&rset];
                    let (cand, cost) = best_join(graph, lplan, rplan, model, cards);
                    match table.get(&union) {
                        Some((_, existing)) if *existing <= cost.total => {}
                        Some(_) => {
                            table.insert(union, (cand, cost.total));
                        }
                        None => {
                            table.insert(union, (cand, cost.total));
                            found.push(union);
                        }
                    }
                }
            }
        }
        by_size[size] = found;
    }
    let full = graph.all_rels();
    if let Some((plan, _)) = table.remove(&full) {
        return plan;
    }
    // Disconnected query graph: combine the best plans of the maximal
    // connected components with cross joins, largest first.
    combine_components(graph, table, model, cards)
}

fn combine_components<C: CardinalitySource>(
    graph: &QueryGraph,
    table: HashMap<RelSet, (PlanNode, f64)>,
    model: &CostModel<'_>,
    cards: &C,
) -> PlanNode {
    // Greedily grow components: find the largest entries that partition
    // the full set.
    let mut remaining = graph.all_rels();
    let mut parts: Vec<PlanNode> = Vec::new();
    let mut entries: Vec<(RelSet, PlanNode)> = table
        .into_iter()
        .map(|(set, (plan, _))| (set, plan))
        .collect();
    entries.sort_by_key(|(set, _)| std::cmp::Reverse(set.len()));
    for (set, plan) in entries {
        if remaining.is_superset(set) && !set.is_empty() {
            parts.push(plan);
            remaining = remaining.minus(set);
            if remaining.is_empty() {
                break;
            }
        }
    }
    debug_assert!(remaining.is_empty(), "singletons always cover the rest");
    let mut iter = parts.into_iter();
    let mut acc = iter.next().expect("at least one component");
    for part in iter {
        let (joined, _) = best_join(graph, &acc, &part, model, cards);
        acc = joined;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_plan;
    use crate::test_support::{chain_query, star_query, TestDb};
    use hfqo_cost::CostParams;
    use hfqo_query::PhysicalPlan;
    use hfqo_stats::EstimatedCardinality;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dp_plan_is_valid_on_chains() {
        for n in 1..=6 {
            let db = TestDb::chain(n, 1000);
            let graph = chain_query(&db, n);
            let params = CostParams::default();
            let model = CostModel::new(&params, &db.stats);
            let cards = EstimatedCardinality::new(&db.stats);
            let plan = dp_plan(&graph, db.db.catalog(), &model, &cards);
            PhysicalPlan::new(plan).validate(&graph).unwrap();
        }
    }

    #[test]
    fn dp_beats_random_plans() {
        let db = TestDb::chain(6, 2000);
        let graph = chain_query(&db, 6);
        let params = CostParams::default();
        let model = CostModel::new(&params, &db.stats);
        let cards = EstimatedCardinality::new(&db.stats);
        let dp = dp_plan(&graph, db.db.catalog(), &model, &cards);
        let dp_cost = model
            .plan_cost(&graph, &PhysicalPlan::new(dp), &cards)
            .total;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let rnd = random_plan(&graph, db.db.catalog(), &mut rng);
            let rnd_cost = model.plan_cost(&graph, &rnd, &cards).total;
            assert!(
                dp_cost <= rnd_cost * 1.0001,
                "dp {dp_cost} worse than random {rnd_cost}"
            );
        }
    }

    #[test]
    fn dp_handles_star_queries() {
        let db = TestDb::star(5, 1000);
        let graph = star_query(&db, 5);
        let params = CostParams::default();
        let model = CostModel::new(&params, &db.stats);
        let cards = EstimatedCardinality::new(&db.stats);
        let plan = dp_plan(&graph, db.db.catalog(), &model, &cards);
        PhysicalPlan::new(plan).validate(&graph).unwrap();
    }

    #[test]
    fn dp_handles_disconnected_graph() {
        // Two relations, no join edge: must produce a cross join.
        let db = TestDb::chain(2, 100);
        let mut graph = chain_query(&db, 2);
        graph =
            hfqo_query::QueryGraph::new(graph.relations().to_vec(), vec![], vec![], vec![], vec![]);
        let params = CostParams::default();
        let model = CostModel::new(&params, &db.stats);
        let cards = EstimatedCardinality::new(&db.stats);
        let plan = dp_plan(&graph, db.db.catalog(), &model, &cards);
        PhysicalPlan::new(plan).validate(&graph).unwrap();
    }

    #[test]
    fn single_relation_query() {
        let db = TestDb::chain(1, 100);
        let graph = chain_query(&db, 1);
        let params = CostParams::default();
        let model = CostModel::new(&params, &db.stats);
        let cards = EstimatedCardinality::new(&db.stats);
        let plan = dp_plan(&graph, db.db.catalog(), &model, &cards);
        assert!(matches!(plan, PlanNode::Scan { .. }));
    }
}
