//! Cost model parameters ("knobs").
//!
//! Defaults follow PostgreSQL's planner cost constants. The paper's §1
//! complains that DBAs must tune exactly these values per database — which
//! is why they are a first-class struct here rather than constants: the
//! bootstrap experiments build a *latency* parameterisation that
//! deliberately disagrees with the costing one.

/// Planner cost constants.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Cost of sequentially reading one page (PostgreSQL: 1.0).
    pub seq_page_cost: f64,
    /// Cost of randomly reading one page (PostgreSQL: 4.0).
    pub random_page_cost: f64,
    /// CPU cost of emitting one tuple (PostgreSQL: 0.01).
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry (PostgreSQL: 0.005).
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of one operator/predicate evaluation (PostgreSQL: 0.0025).
    pub cpu_operator_cost: f64,
    /// Per-tuple cost multiplier for building a hash table.
    pub hash_build_factor: f64,
    /// Per-comparison cost multiplier for sorting (`n log2 n` model).
    pub sort_factor: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            hash_build_factor: 1.5,
            sort_factor: 1.0,
        }
    }
}

impl CostParams {
    /// PostgreSQL-like defaults (disk-resident assumptions).
    pub fn postgres_like() -> Self {
        Self::default()
    }

    /// A parameterisation approximating the *actual* in-memory execution
    /// engine: random access is barely more expensive than sequential,
    /// hashing is relatively cheap, per-tuple CPU dominates. The gap
    /// between this and [`postgres_like`](Self::postgres_like) is the
    /// systematic cost-vs-latency disagreement the paper's §4 discusses
    /// ("a query with a high optimizer cost might outperform a query with
    /// lower optimizer cost").
    pub fn in_memory_latency() -> Self {
        Self {
            seq_page_cost: 0.1,
            random_page_cost: 0.15,
            cpu_tuple_cost: 0.02,
            cpu_index_tuple_cost: 0.004,
            cpu_operator_cost: 0.005,
            hash_build_factor: 1.2,
            sort_factor: 1.4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_postgres() {
        let p = CostParams::default();
        assert_eq!(p.seq_page_cost, 1.0);
        assert_eq!(p.random_page_cost, 4.0);
        assert_eq!(p.cpu_tuple_cost, 0.01);
    }

    #[test]
    fn latency_params_differ() {
        assert_ne!(CostParams::postgres_like(), CostParams::in_memory_latency());
    }
}
