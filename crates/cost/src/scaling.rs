//! The §5.2 bootstrap reward scaler.
//!
//! When cost-model bootstrapping switches its reward from optimizer cost
//! (Phase 1) to observed latency (Phase 2), the raw reward range jumps —
//! e.g. costs in 10–50 vs latencies in 100–200 ms — which the paper warns
//! "could cause the DRL model to begin exploring previously-discarded
//! strategies". The fix proposed there maps a latency `l` into the cost
//! range observed at the end of Phase 1:
//!
//! ```text
//! r_l = C_min + (l − L_min) / (L_max − L_min) · (C_max − C_min)
//! ```
//!
//! [`RewardScaler`] implements exactly that, with an observation phase that
//! records the four extrema.

/// Linear latency-to-cost-range scaler (the paper's `r_l` formula).
#[derive(Debug, Clone, PartialEq)]
pub struct RewardScaler {
    c_min: f64,
    c_max: f64,
    l_min: f64,
    l_max: f64,
    observations: usize,
}

impl Default for RewardScaler {
    fn default() -> Self {
        Self::new()
    }
}

impl RewardScaler {
    /// A scaler with no observations yet.
    pub fn new() -> Self {
        Self {
            c_min: f64::INFINITY,
            c_max: f64::NEG_INFINITY,
            l_min: f64::INFINITY,
            l_max: f64::NEG_INFINITY,
            observations: 0,
        }
    }

    /// Records one `(cost, latency)` pair observed near the end of
    /// Phase 1 (when the model has converged).
    pub fn observe(&mut self, cost: f64, latency: f64) {
        self.c_min = self.c_min.min(cost);
        self.c_max = self.c_max.max(cost);
        self.l_min = self.l_min.min(latency);
        self.l_max = self.l_max.max(latency);
        self.observations += 1;
    }

    /// Number of recorded pairs.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Whether enough structure exists to scale (at least two distinct
    /// latencies and costs).
    pub fn is_ready(&self) -> bool {
        self.observations >= 2 && self.l_max > self.l_min && self.c_max >= self.c_min
    }

    /// Maps a Phase-2 latency into the Phase-1 cost range using the
    /// paper's linear formula. Latencies outside the observed range
    /// extrapolate linearly (a catastrophically slow plan should map to a
    /// catastrophically high scaled value).
    pub fn scale(&self, latency: f64) -> f64 {
        if !self.is_ready() {
            return latency;
        }
        self.c_min + (latency - self.l_min) / (self.l_max - self.l_min) * (self.c_max - self.c_min)
    }

    /// Observed cost range `(C_min, C_max)`.
    pub fn cost_range(&self) -> (f64, f64) {
        (self.c_min, self.c_max)
    }

    /// Observed latency range `(L_min, L_max)`.
    pub fn latency_range(&self) -> (f64, f64) {
        (self.l_min, self.l_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> RewardScaler {
        let mut s = RewardScaler::new();
        // Costs 10..50, latencies 100..200 — the paper's own example.
        s.observe(10.0, 100.0);
        s.observe(50.0, 200.0);
        s.observe(30.0, 150.0);
        s
    }

    #[test]
    fn maps_endpoints_exactly() {
        let s = trained();
        assert!(s.is_ready());
        assert!((s.scale(100.0) - 10.0).abs() < 1e-12);
        assert!((s.scale(200.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn interpolates_linearly() {
        let s = trained();
        assert!((s.scale(150.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn extrapolates_outside_range() {
        let s = trained();
        // A 400 ms plan maps far beyond C_max — still "catastrophic".
        assert!(s.scale(400.0) > 100.0);
        // A miraculous 50 ms plan maps below C_min.
        assert!(s.scale(50.0) < 10.0);
    }

    #[test]
    fn not_ready_passes_through() {
        let mut s = RewardScaler::new();
        assert!(!s.is_ready());
        assert_eq!(s.scale(123.0), 123.0);
        s.observe(10.0, 100.0);
        assert!(!s.is_ready());
        assert_eq!(s.observations(), 1);
    }

    #[test]
    fn ranges_reported() {
        let s = trained();
        assert_eq!(s.cost_range(), (10.0, 50.0));
        assert_eq!(s.latency_range(), (100.0, 200.0));
    }
}
