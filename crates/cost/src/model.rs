//! The analytic plan cost model.

use crate::params::CostParams;
use hfqo_query::{AccessPath, AggAlgo, JoinAlgo, PhysicalPlan, PlanNode, QueryGraph, RelSet};
use hfqo_stats::{selection_selectivity, CardinalitySource, StatsCatalog};

/// Cost and output cardinality of a (sub)plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Total cost in abstract planner units.
    pub total: f64,
    /// Estimated rows produced.
    pub output_rows: f64,
}

/// The cost model: parameters + physical table statistics, generic at call
/// time over the cardinality source.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    params: &'a CostParams,
    stats: &'a StatsCatalog,
}

impl<'a> CostModel<'a> {
    /// Creates a cost model.
    pub fn new(params: &'a CostParams, stats: &'a StatsCatalog) -> Self {
        Self { params, stats }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &CostParams {
        self.params
    }

    /// Costs a full plan.
    pub fn plan_cost<C: CardinalitySource>(
        &self,
        graph: &QueryGraph,
        plan: &PhysicalPlan,
        cards: &C,
    ) -> CostEstimate {
        self.node_cost(graph, &plan.root, cards)
    }

    /// Costs one plan node (recursively).
    pub fn node_cost<C: CardinalitySource>(
        &self,
        graph: &QueryGraph,
        node: &PlanNode,
        cards: &C,
    ) -> CostEstimate {
        let p = self.params;
        match node {
            PlanNode::Scan { rel, path } => {
                let table = graph.relation(*rel).table;
                let tstats = self.stats.table(table);
                let raw_rows = tstats.row_count.max(1.0);
                let out_rows = cards.base_rows(graph, *rel);
                let n_sels = graph.selections_on(*rel).count() as f64;
                match path {
                    AccessPath::SeqScan => {
                        let total = tstats.pages() * p.seq_page_cost
                            + raw_rows * p.cpu_tuple_cost
                            + raw_rows * n_sels * p.cpu_operator_cost;
                        CostEstimate {
                            total,
                            output_rows: out_rows,
                        }
                    }
                    AccessPath::IndexScan {
                        driving_selection, ..
                    } => {
                        // Rows matched by the driving predicate alone.
                        let driving_sel = selection_selectivity(
                            self.stats,
                            graph,
                            &graph.selections()[*driving_selection],
                        );
                        let matched = (raw_rows * driving_sel).max(1.0);
                        let descend = (raw_rows + 1.0).log2().max(1.0) * p.cpu_operator_cost;
                        // Heap fetches: one random page per matched row,
                        // capped at the table size (uncorrelated index).
                        let fetches = matched.min(tstats.pages());
                        let residual_ops = (n_sels - 1.0).max(0.0);
                        let total = descend
                            + matched * p.cpu_index_tuple_cost
                            + fetches * p.random_page_cost
                            + matched * p.cpu_tuple_cost
                            + matched * residual_ops * p.cpu_operator_cost;
                        CostEstimate {
                            total,
                            output_rows: out_rows,
                        }
                    }
                }
            }
            PlanNode::Join {
                algo,
                conds,
                left,
                right,
            } => {
                let l = self.node_cost(graph, left, cards);
                let r = self.node_cost(graph, right, cards);
                let out_set: RelSet = left.rel_set().union(right.rel_set());
                let out_rows = cards.set_rows(graph, out_set);
                let n_conds = conds.len().max(1) as f64;
                let join_work = match algo {
                    JoinAlgo::NestedLoop => {
                        // Inner is materialised once; the quadratic term is
                        // the pairwise predicate evaluation.
                        l.output_rows * r.output_rows * n_conds * p.cpu_operator_cost
                    }
                    JoinAlgo::Hash => {
                        r.output_rows * p.hash_build_factor * p.cpu_operator_cost
                            + l.output_rows * n_conds * p.cpu_operator_cost
                    }
                    JoinAlgo::Merge => {
                        let sort = |n: f64| {
                            n.max(2.0) * n.max(2.0).log2() * p.sort_factor * p.cpu_operator_cost
                        };
                        sort(l.output_rows)
                            + sort(r.output_rows)
                            + (l.output_rows + r.output_rows) * p.cpu_operator_cost
                    }
                };
                CostEstimate {
                    total: l.total + r.total + join_work + out_rows * p.cpu_tuple_cost,
                    output_rows: out_rows,
                }
            }
            PlanNode::Aggregate { algo, input } => {
                let i = self.node_cost(graph, input, cards);
                // Group-count heuristic: no GROUP BY → 1 group; otherwise
                // square-root of the input (a standard planner fallback
                // when group columns lack joint statistics).
                let groups = if graph.group_by().is_empty() {
                    1.0
                } else {
                    i.output_rows.sqrt().max(1.0)
                };
                let work = match algo {
                    AggAlgo::Hash => i.output_rows * p.hash_build_factor * p.cpu_operator_cost,
                    AggAlgo::Sort => {
                        i.output_rows.max(2.0)
                            * i.output_rows.max(2.0).log2()
                            * p.sort_factor
                            * p.cpu_operator_cost
                    }
                };
                CostEstimate {
                    total: i.total + work + groups * p.cpu_tuple_cost,
                    output_rows: groups,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{ColumnId, ColumnStatsMeta, TableId};
    use hfqo_query::{BoundColumn, JoinEdge, Lit, RelId, Relation, Selection};
    use hfqo_sql::CompareOp;
    use hfqo_stats::{ColumnStats, EstimatedCardinality, Histogram, TableStats};

    fn col_stats(ndv: f64, min: f64, max: f64) -> ColumnStats {
        ColumnStats {
            meta: ColumnStatsMeta {
                ndv,
                min,
                max,
                null_frac: 0.0,
            },
            histogram: Histogram::build(
                (0..100)
                    .map(|i| min + (max - min) * (i as f64) / 99.0)
                    .collect(),
                20,
            ),
            mcvs: vec![],
        }
    }

    /// a: 1,000 rows; b: 100,000 rows with an FK to a and a selective filter.
    fn setup() -> (StatsCatalog, QueryGraph) {
        let a = TableStats {
            row_count: 1_000.0,
            row_width: 16.0,
            columns: vec![col_stats(1_000.0, 0.0, 999.0)],
        };
        let b = TableStats {
            row_count: 100_000.0,
            row_width: 16.0,
            columns: vec![
                col_stats(1_000.0, 0.0, 999.0),
                col_stats(1_000.0, 0.0, 999.0),
            ],
        };
        let stats = StatsCatalog::new(vec![a, b]);
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: TableId(0),
                    alias: "a".into(),
                },
                Relation {
                    table: TableId(1),
                    alias: "b".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(0)),
            }],
            vec![Selection {
                column: BoundColumn::new(RelId(1), ColumnId(1)),
                op: CompareOp::Eq,
                value: Lit::Int(7),
            }],
            vec![],
            vec![],
        );
        (stats, graph)
    }

    fn scan(rel: u32) -> PlanNode {
        PlanNode::Scan {
            rel: RelId(rel),
            path: AccessPath::SeqScan,
        }
    }

    fn join(algo: JoinAlgo, l: PlanNode, r: PlanNode) -> PlanNode {
        PlanNode::Join {
            algo,
            conds: vec![0],
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn hash_beats_nested_loop_on_large_inputs() {
        let (stats, graph) = setup();
        let params = CostParams::default();
        let model = CostModel::new(&params, &stats);
        let est = EstimatedCardinality::new(&stats);
        let nl = model.plan_cost(
            &graph,
            &PhysicalPlan::new(join(JoinAlgo::NestedLoop, scan(1), scan(0))),
            &est,
        );
        let hash = model.plan_cost(
            &graph,
            &PhysicalPlan::new(join(JoinAlgo::Hash, scan(1), scan(0))),
            &est,
        );
        assert!(
            hash.total < nl.total,
            "hash {} should beat NL {}",
            hash.total,
            nl.total
        );
        assert_eq!(hash.output_rows, nl.output_rows);
    }

    #[test]
    fn index_scan_beats_seq_scan_for_selective_predicate() {
        let (stats, graph) = setup();
        let params = CostParams::default();
        let model = CostModel::new(&params, &stats);
        let est = EstimatedCardinality::new(&stats);
        let seq = model.node_cost(&graph, &scan(1), &est);
        let idx = model.node_cost(
            &graph,
            &PlanNode::Scan {
                rel: RelId(1),
                path: AccessPath::IndexScan {
                    index: hfqo_catalog::IndexId(0),
                    driving_selection: 0,
                },
            },
            &est,
        );
        // 0.1% selectivity: the index scan should win clearly.
        assert!(
            idx.total < seq.total / 2.0,
            "idx {} vs seq {}",
            idx.total,
            seq.total
        );
        assert_eq!(idx.output_rows, seq.output_rows);
    }

    #[test]
    fn cross_join_is_catastrophic() {
        let (stats, filtered) = setup();
        // Same query without the selective filter on b: the cross product
        // is now 1000 × 100,000 pairs.
        let graph = QueryGraph::new(
            filtered.relations().to_vec(),
            filtered.joins().to_vec(),
            vec![],
            vec![],
            vec![],
        );
        let params = CostParams::default();
        let model = CostModel::new(&params, &stats);
        let est = EstimatedCardinality::new(&stats);
        let good = model.plan_cost(
            &graph,
            &PhysicalPlan::new(join(JoinAlgo::Hash, scan(1), scan(0))),
            &est,
        );
        let cross = model.plan_cost(
            &graph,
            &PhysicalPlan::new(PlanNode::Join {
                algo: JoinAlgo::NestedLoop,
                conds: vec![],
                left: Box::new(scan(1)),
                right: Box::new(scan(0)),
            }),
            &est,
        );
        assert!(cross.total > 10.0 * good.total);
    }

    #[test]
    fn aggregate_adds_cost_on_top() {
        let (stats, graph) = setup();
        let params = CostParams::default();
        let model = CostModel::new(&params, &stats);
        let est = EstimatedCardinality::new(&stats);
        let plain = model.plan_cost(
            &graph,
            &PhysicalPlan::new(join(JoinAlgo::Hash, scan(1), scan(0))),
            &est,
        );
        let agg = model.plan_cost(
            &graph,
            &PhysicalPlan::new(PlanNode::Aggregate {
                algo: AggAlgo::Hash,
                input: Box::new(join(JoinAlgo::Hash, scan(1), scan(0))),
            }),
            &est,
        );
        assert!(agg.total > plain.total);
        assert_eq!(agg.output_rows, 1.0);
    }

    #[test]
    fn costs_are_positive_and_monotone_in_inputs() {
        let (stats, graph) = setup();
        let params = CostParams::default();
        let model = CostModel::new(&params, &stats);
        let est = EstimatedCardinality::new(&stats);
        let small = model.node_cost(&graph, &scan(0), &est);
        let large = model.node_cost(&graph, &scan(1), &est);
        assert!(small.total > 0.0);
        assert!(large.total > small.total);
    }
}
