//! # hfqo-cost
//!
//! The cost model `M(t)` of the paper: a PostgreSQL-style analytic model
//! over physical plans, generic over a [`CardinalitySource`]. Driven by the
//! histogram estimator it plays the role of the traditional optimizer's
//! cost model (ReJOIN's reward signal, §3); driven by the true-cardinality
//! oracle plus a latency parameter set and noise it becomes the *latency
//! simulator* used wherever the paper executes plans (§4's evaluation
//! overhead, §5's fine-tuning phases).
//!
//! [`CardinalitySource`]: hfqo_stats::CardinalitySource

pub mod latency;
pub mod model;
pub mod params;
pub mod scaling;

pub use latency::LatencyModel;
pub use model::{CostEstimate, CostModel};
pub use params::CostParams;
pub use scaling::RewardScaler;
