//! The analytic latency model.
//!
//! The paper's experiments need query *latency* as a reward signal, but
//! executing tens of thousands of plans per experiment configuration is
//! exactly the "performance evaluation overhead" problem §4 describes. We
//! therefore simulate latency analytically: the same cost formulas, but
//! driven by **true** cardinalities, an in-memory parameter set that
//! systematically disagrees with the costing one, and multiplicative
//! log-normal noise. Real wall-clock execution remains available through
//! `hfqo-exec` and is used by the latency-overhead experiment; tests verify
//! the two sources rank plans consistently.

use crate::model::CostModel;
use crate::params::CostParams;
use hfqo_query::{PhysicalPlan, QueryGraph};
use hfqo_stats::{CardinalitySource, StatsCatalog};
use rand::rngs::StdRng;
use rand::Rng;

/// Simulated execution latency, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedLatency {
    /// Latency in milliseconds.
    pub millis: f64,
}

/// Analytic latency model.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    params: CostParams,
    /// Conversion from latency-cost units to milliseconds.
    pub ms_per_unit: f64,
    /// Standard deviation of the log-normal noise (0 disables noise).
    pub noise_sigma: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            params: CostParams::in_memory_latency(),
            ms_per_unit: 0.01,
            noise_sigma: 0.08,
        }
    }
}

impl LatencyModel {
    /// A model with custom parameters.
    pub fn new(params: CostParams, ms_per_unit: f64, noise_sigma: f64) -> Self {
        Self {
            params,
            ms_per_unit,
            noise_sigma,
        }
    }

    /// A noiseless model (deterministic; useful in tests).
    pub fn noiseless() -> Self {
        Self {
            noise_sigma: 0.0,
            ..Self::default()
        }
    }

    /// Simulates the latency of executing `plan`.
    ///
    /// `cards` should be a *true*-cardinality source for faithful
    /// simulation (the execution-backed oracle in `hfqo-exec`), though any
    /// source works.
    pub fn simulate<C: CardinalitySource>(
        &self,
        graph: &QueryGraph,
        plan: &PhysicalPlan,
        stats: &StatsCatalog,
        cards: &C,
        rng: &mut StdRng,
    ) -> SimulatedLatency {
        let model = CostModel::new(&self.params, stats);
        let est = model.plan_cost(graph, plan, cards);
        let noise = if self.noise_sigma > 0.0 {
            // Log-normal multiplicative noise via Box-Muller.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (self.noise_sigma * z).exp()
        } else {
            1.0
        };
        SimulatedLatency {
            millis: (est.total * self.ms_per_unit * noise).max(0.001),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{ColumnId, ColumnStatsMeta, TableId};
    use hfqo_query::{AccessPath, BoundColumn, JoinAlgo, JoinEdge, PlanNode, RelId, Relation};
    use hfqo_sql::CompareOp;
    use hfqo_stats::{ColumnStats, EstimatedCardinality, TableStats};
    use rand::SeedableRng;

    fn setup() -> (StatsCatalog, QueryGraph) {
        let mk = |rows: f64| TableStats {
            row_count: rows,
            row_width: 16.0,
            columns: vec![ColumnStats {
                meta: ColumnStatsMeta {
                    ndv: rows,
                    min: 0.0,
                    max: rows - 1.0,
                    null_frac: 0.0,
                },
                histogram: None,
                mcvs: vec![],
            }],
        };
        let stats = StatsCatalog::new(vec![mk(1000.0), mk(5000.0)]);
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: TableId(0),
                    alias: "a".into(),
                },
                Relation {
                    table: TableId(1),
                    alias: "b".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(0)),
            }],
            vec![],
            vec![],
            vec![],
        );
        (stats, graph)
    }

    fn plan(algo: JoinAlgo, conds: Vec<usize>) -> PhysicalPlan {
        PhysicalPlan::new(PlanNode::Join {
            algo,
            conds,
            left: Box::new(PlanNode::Scan {
                rel: RelId(0),
                path: AccessPath::SeqScan,
            }),
            right: Box::new(PlanNode::Scan {
                rel: RelId(1),
                path: AccessPath::SeqScan,
            }),
        })
    }

    #[test]
    fn noiseless_is_deterministic() {
        let (stats, graph) = setup();
        let est = EstimatedCardinality::new(&stats);
        let model = LatencyModel::noiseless();
        let mut rng = StdRng::seed_from_u64(1);
        let a = model.simulate(
            &graph,
            &plan(JoinAlgo::Hash, vec![0]),
            &stats,
            &est,
            &mut rng,
        );
        let b = model.simulate(
            &graph,
            &plan(JoinAlgo::Hash, vec![0]),
            &stats,
            &est,
            &mut rng,
        );
        assert_eq!(a, b);
        assert!(a.millis > 0.0);
    }

    #[test]
    fn bad_plans_are_slower() {
        let (stats, graph) = setup();
        let est = EstimatedCardinality::new(&stats);
        let model = LatencyModel::noiseless();
        let mut rng = StdRng::seed_from_u64(1);
        let good = model.simulate(
            &graph,
            &plan(JoinAlgo::Hash, vec![0]),
            &stats,
            &est,
            &mut rng,
        );
        let cross = model.simulate(
            &graph,
            &plan(JoinAlgo::NestedLoop, vec![]),
            &stats,
            &est,
            &mut rng,
        );
        assert!(cross.millis > 5.0 * good.millis);
    }

    #[test]
    fn noise_is_bounded_and_multiplicative() {
        let (stats, graph) = setup();
        let est = EstimatedCardinality::new(&stats);
        let model = LatencyModel::default();
        let base = LatencyModel::noiseless()
            .simulate(
                &graph,
                &plan(JoinAlgo::Hash, vec![0]),
                &stats,
                &est,
                &mut StdRng::seed_from_u64(0),
            )
            .millis;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let l = model
                .simulate(
                    &graph,
                    &plan(JoinAlgo::Hash, vec![0]),
                    &stats,
                    &est,
                    &mut rng,
                )
                .millis;
            // ±8% sigma: 5 sigma bounds are generous.
            assert!(
                l > base * 0.6 && l < base * 1.6,
                "latency {l} vs base {base}"
            );
        }
    }
}
